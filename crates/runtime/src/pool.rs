//! The worker pool and the fork/join entry point.
//!
//! [`fork`] is romp's `__kmpc_fork_call`: the directive layer outlines a
//! parallel region into a closure and passes it here; the calling thread
//! becomes thread 0 of a fresh team whose other members are drawn from a
//! lazily-grown, process-global pool of parked worker threads.
//!
//! ## Safety of the lifetime erasure
//!
//! The region closure lives on the master's stack and is executed
//! concurrently by workers through a raw pointer (`Job`). This is sound
//! because `fork` does not return until every team member has signalled
//! completion (`Team::remaining` reaching zero), so the closure —
//! and everything it borrows — strictly outlives all worker access.
//! The paper's Zig implementation relies on the identical contract when
//! it passes function pointers plus pointers into the enclosing stack
//! frame to the LLVM OpenMP runtime.
//!
//! ## Panic handling
//!
//! A panicking team thread records its payload in the team and raises the
//! team abort flag; sibling threads waiting at barriers or dispatch slots
//! observe the flag and unwind with a [`SiblingPanic`] marker. After the
//! join, the master rethrows the first real payload, so a panic inside a
//! parallel region behaves like a panic in serial code.

use crate::ctx::{forking_position, RegionInfo, SiblingPanic, ThreadCtx, REGION_STACK};
use crate::icv::{self, Icvs};
use crate::stats::{bump, stats};
use crate::team::Team;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// How a `parallel` construct is launched; carries the clause values the
/// paper's directive supports (`num_threads`, `if`, `proc_bind`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ForkSpec {
    /// `num_threads(n)` clause; `None` = use the `nthreads-var` ICV.
    pub num_threads: Option<usize>,
    /// `if(expr)` clause; `Some(false)` forces a serialized (team-of-one)
    /// region.
    pub if_clause: Option<bool>,
}

impl ForkSpec {
    /// Default spec: team size from the ICVs.
    pub fn new() -> Self {
        ForkSpec::default()
    }

    /// Request an explicit team size (the `num_threads` clause).
    pub fn with_num_threads(n: usize) -> Self {
        ForkSpec {
            num_threads: Some(n),
            if_clause: None,
        }
    }

    /// Attach an `if` clause.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.if_clause = Some(cond);
        self
    }

    /// Attach a `num_threads` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }
}

/// Type-erased pointer to the region closure plus its call trampoline.
/// The second trampoline argument is a type-erased `&ThreadCtx<'env>`.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), *const ()),
}

// SAFETY: the pointee is `Sync` (bound enforced by `make_job`) and the
// master keeps it alive for the duration of all worker access.
unsafe impl Send for Job {}

fn make_job<'env, F>(f: &F) -> Job
where
    F: Fn(&ThreadCtx<'env>) + Sync,
{
    unsafe fn call<'env, F>(data: *const (), ctx: *const ())
    where
        F: Fn(&ThreadCtx<'env>) + Sync,
    {
        // SAFETY: `data` was produced from `&F` in `make_job` and is kept
        // alive by the forking master until the join completes; `ctx`
        // points at the executing thread's live `ThreadCtx`, whose
        // lifetime parameter is erased here and re-conjured — sound
        // because the context never stores `'env` data, it only brands
        // the `task` bound (see `ThreadCtx` docs).
        let f = unsafe { &*(data as *const F) };
        let ctx = unsafe { &*(ctx as *const ThreadCtx<'env>) };
        f(ctx);
    }
    Job {
        data: f as *const F as *const (),
        call: call::<F>,
    }
}

struct Assignment {
    team: Arc<Team>,
    thread_num: usize,
    job: Job,
}

struct WorkerSlot {
    mailbox: Mutex<Option<Assignment>>,
    cv: Condvar,
}

struct Pool {
    idle: Mutex<Vec<Arc<WorkerSlot>>>,
    total: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        idle: Mutex::new(Vec::new()),
        total: AtomicUsize::new(0),
    })
}

impl Pool {
    /// Take up to `want` idle workers, spawning new ones while under the
    /// thread limit. May return fewer than requested (the spec permits
    /// delivering fewer threads than asked).
    fn acquire(&self, want: usize, icvs: &Icvs) -> Vec<Arc<WorkerSlot>> {
        let mut got = Vec::with_capacity(want);
        {
            let mut idle = self.idle.lock();
            while got.len() < want {
                match idle.pop() {
                    Some(w) => got.push(w),
                    None => break,
                }
            }
        }
        // The limit counts all threads; reserve one for the initial thread.
        let worker_cap = icvs.thread_limit.saturating_sub(1);
        while got.len() < want {
            if self
                .total
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |t| {
                    (t < worker_cap).then_some(t + 1)
                })
                .is_err()
            {
                break;
            }
            got.push(spawn_worker(icvs.stacksize));
        }
        got
    }

    fn release(&self, slot: Arc<WorkerSlot>) {
        self.idle.lock().push(slot);
    }
}

fn spawn_worker(stacksize: Option<usize>) -> Arc<WorkerSlot> {
    bump(&stats().workers_spawned);
    let slot = Arc::new(WorkerSlot {
        mailbox: Mutex::new(None),
        cv: Condvar::new(),
    });
    let their_slot = slot.clone();
    let n = stats().workers_spawned.load(Ordering::Relaxed);
    let mut builder = std::thread::Builder::new().name(format!("romp-worker-{n}"));
    if let Some(bytes) = stacksize {
        builder = builder.stack_size(bytes);
    }
    builder
        .spawn(move || worker_main(their_slot))
        .expect("failed to spawn romp worker thread");
    slot
}

fn worker_main(slot: Arc<WorkerSlot>) {
    loop {
        let assignment = {
            let mut mb = slot.mailbox.lock();
            loop {
                if let Some(a) = mb.take() {
                    break a;
                }
                slot.cv.wait(&mut mb);
            }
        };
        let Assignment {
            team,
            thread_num,
            job,
        } = assignment;
        // Fresh implicit-task data environment: `omp_set_*` overrides
        // from regions this worker served earlier must not leak in.
        icv::tls_clear_overrides();
        run_region(&team, thread_num, job);
        // Signal completion, then return to the pool. Nothing after the
        // decrement may touch the job or team borrows.
        let prev = team.remaining.fetch_sub(1, Ordering::AcqRel);
        if prev == 1 {
            let _g = team.join_lock.lock();
            drop(_g);
            team.join_cv.notify_one();
        }
        drop(team);
        pool().release(slot.clone());
    }
}

/// Run a region body as `thread_num` of `team` on the current thread:
/// maintain the region TLS stack, catch panics into the team, and execute
/// the implicit end-of-region barrier (which drains deferred tasks).
fn run_region(team: &Arc<Team>, thread_num: usize, job: Job) {
    REGION_STACK.with(|s| {
        s.borrow_mut().push(RegionInfo {
            team: team.clone(),
            thread_num,
        })
    });
    // A region forked from a final task is executed by final implicit
    // tasks on *every* team thread: re-establish the TLS flag here so
    // tasks spawned by any member come out included (undeferred).
    let _final = team.parent_final.then(crate::task::FinalGuard::enter);
    let ctx: ThreadCtx<'_> = ThreadCtx::new(team.clone(), thread_num);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // SAFETY: the master blocks in `join` until every team thread has
        // finished with the job, so the closure behind `job.data` (and
        // everything it borrows) outlives this call.
        unsafe { (job.call)(job.data, &ctx as *const ThreadCtx<'_> as *const ()) };
        ctx.end_of_region_barrier();
    }));
    if let Err(payload) = result {
        team.record_panic(payload);
    }
    REGION_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

/// Fork a parallel region: run `f` once per team thread, join, and
/// propagate panics. The analogue of `__kmpc_fork_call`.
///
/// Team size resolution follows the spec: the `if` clause can force
/// serialization; otherwise `num_threads`, then the `nthreads-var` ICV;
/// nesting beyond `max-active-levels` serializes; everything is clamped
/// by `thread-limit-var` and by how many workers the pool can actually
/// deliver.
///
/// The `'env` lifetime plays the role of `std::thread::scope`'s
/// environment lifetime: closures handed to
/// [`ThreadCtx::task`] may borrow anything that outlives the `fork`
/// call, because the region's implicit end barrier drains all deferred
/// tasks before `fork` returns.
pub fn fork<'env, F>(spec: ForkSpec, f: F)
where
    F: Fn(&ThreadCtx<'env>) + Sync,
{
    let mut icvs = icv::current();
    // ICV inheritance for nested regions: the child team's
    // `run-sched-var` comes from the enclosing team's fork-time
    // snapshot (not this OS thread's view of the global ICV), unless
    // this thread explicitly called `omp_set_schedule` in the region.
    if icv::tls_run_sched_override().is_none() {
        crate::ctx::with_current(|r| icvs.run_sched = r.team.run_sched, || ());
    }
    let (level, active_level, ancestors) = forking_position();
    let parent_final = crate::task::in_final();
    let mut n = match spec.if_clause {
        Some(false) => 1,
        _ => spec
            .num_threads
            .unwrap_or_else(|| icvs.nthreads_for_level(level)),
    };
    if active_level >= icvs.max_active_levels {
        n = 1;
    }
    n = n.clamp(1, icvs.thread_limit.max(1));
    bump(&stats().forks);

    let job = make_job(&f);
    if n == 1 {
        bump(&stats().serialized_forks);
        let team = Arc::new(Team::new(
            1,
            level + 1,
            active_level,
            icvs.barrier_kind,
            icvs.wait_policy,
            ancestors,
            icvs.run_sched,
            parent_final,
        ));
        run_region(&team, 0, job);
        rethrow(&team);
        return;
    }

    let workers = pool().acquire(n - 1, &icvs);
    let size = workers.len() + 1;
    if size == 1 {
        bump(&stats().serialized_forks);
    }
    // Oversubscription heuristic (libomp does the same): when the team
    // is larger than the hardware concurrency, spinning at barriers
    // steals the timeslice from the sibling that would release us —
    // park immediately instead.
    let wait_policy = if size > crate::icv::hardware_threads() {
        crate::icv::WaitPolicy::Passive
    } else {
        icvs.wait_policy
    };
    let team = Arc::new(Team::new(
        size,
        level + 1,
        active_level + 1,
        icvs.barrier_kind,
        wait_policy,
        ancestors,
        icvs.run_sched,
        parent_final,
    ));
    for (i, w) in workers.iter().enumerate() {
        let mut mb = w.mailbox.lock();
        *mb = Some(Assignment {
            team: team.clone(),
            thread_num: i + 1,
            job,
        });
        drop(mb);
        w.cv.notify_one();
    }
    run_region(&team, 0, job);
    join(&team, &icvs);
    rethrow(&team);
}

/// Block until every worker of `team` has signalled completion.
fn join(team: &Arc<Team>, icvs: &Icvs) {
    let spin_budget = icvs.wait_policy.spin_budget();
    let mut spins = 0u32;
    while team.remaining.load(Ordering::Acquire) > 0 {
        spins += 1;
        if spins >= spin_budget {
            break;
        }
        std::hint::spin_loop();
    }
    let mut guard = team.join_lock.lock();
    while team.remaining.load(Ordering::Acquire) > 0 {
        team.join_cv
            .wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

/// After the join: if any team thread panicked, rethrow on the master.
fn rethrow(team: &Arc<Team>) {
    if team.abort.load(Ordering::Acquire) {
        let payload = team.panic_payload.lock().take();
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            None => std::panic::panic_any(SiblingPanic),
        }
    }
}

/// Number of workers currently alive in the global pool (diagnostic).
pub fn pool_size() -> usize {
    pool().total.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Schedule;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fork_runs_body_once_per_thread() {
        let hits = AtomicUsize::new(0);
        let distinct = Mutex::new(std::collections::HashSet::new());
        fork(ForkSpec::with_num_threads(4), |ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            distinct.lock().insert(ctx.thread_num());
            assert_eq!(ctx.num_threads(), 4);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(distinct.lock().len(), 4);
    }

    #[test]
    fn if_false_serializes() {
        fork(ForkSpec::new().num_threads(8).if_clause(false), |ctx| {
            assert_eq!(ctx.num_threads(), 1);
            assert_eq!(ctx.thread_num(), 0);
        });
    }

    #[test]
    fn team_of_one_still_supports_constructs() {
        let sum = AtomicU64::new(0);
        fork(ForkSpec::with_num_threads(1), |ctx| {
            ctx.ws_for(0..10, Schedule::dynamic(), false, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            ctx.barrier();
            assert!(ctx.single(false, || ()).is_some());
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn workers_are_reused_across_regions() {
        // Warm the pool.
        fork(ForkSpec::with_num_threads(4), |_| {});
        let spawned_before = stats().workers_spawned.load(Ordering::Relaxed);
        for _ in 0..50 {
            fork(ForkSpec::with_num_threads(4), |_| {});
        }
        let spawned_after = stats().workers_spawned.load(Ordering::Relaxed);
        // Other tests run concurrently and may spawn workers of their own,
        // but 50 sequential same-size regions must not need 50 new teams'
        // worth of threads.
        assert!(
            spawned_after - spawned_before < 50 * 3,
            "pool failed to reuse workers: {spawned_before} -> {spawned_after}"
        );
    }

    #[test]
    fn panic_in_region_propagates_to_caller() {
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(4), |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("worker exploded");
                }
                // Other threads park at a barrier; the abort flag must
                // release them.
                ctx.barrier();
            });
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "worker exploded");
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(4), |_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn master_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            fork(ForkSpec::with_num_threads(2), |ctx| {
                if ctx.is_master() {
                    panic!("master exploded");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_fork_serializes_by_default() {
        // max_active_levels defaults to 1.
        fork(ForkSpec::with_num_threads(2), |outer| {
            let outer_n = outer.num_threads();
            let outer_level = outer.level();
            fork(ForkSpec::with_num_threads(4), move |inner| {
                assert_eq!(inner.num_threads(), 1, "inner region must serialize");
                assert_eq!(inner.level(), outer_level + 1);
            });
            assert!(outer_n <= 2);
        });
    }

    #[test]
    fn borrowed_data_is_visible_and_writable() {
        let mut data = vec![0u64; 1000];
        let chunks: Vec<_> = data.chunks_mut(250).collect();
        let chunks = Mutex::new(chunks);
        fork(ForkSpec::with_num_threads(4), |_ctx| {
            // Each thread takes one disjoint chunk.
            let mine = chunks.lock().pop();
            if let Some(chunk) = mine {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = i as u64;
                }
            }
        });
        for chunk in data.chunks(250) {
            for (i, &x) in chunk.iter().enumerate() {
                assert_eq!(x, i as u64);
            }
        }
    }
}
