//! The `reduction` clause machinery.
//!
//! OpenMP reductions give every thread a private copy initialized to the
//! operator's identity; at the end of the construct the private copies
//! are combined into the original variable in a thread-safe way. We model
//! this with:
//!
//! * [`ReduceOp`] — the operator lattice (`+ * min max & | ^ && ||`),
//!   with identities, implemented for the integer and float primitive
//!   types that OpenMP's C binding supports;
//! * [`RedVar`] — a shared reduction variable: threads call
//!   [`RedVar::contribute`] with their private partial; the combine is
//!   serialized by an [`OmpLock`]. The per-thread partial accumulation is
//!   unsynchronized (that is the whole point of a reduction), only the
//!   final fold takes the lock — once per thread, not once per iteration.
//!
//! The macro layer (`romp-core`) desugars
//! `reduction(+ : sum)` into exactly this pattern, which is also how the
//! paper's Zig implementation lowers its `reduction` clause onto the
//! LLVM runtime's atomic/critical combine path.

use crate::lock::OmpLock;
use std::cell::UnsafeCell;

/// A reduction operator with an identity element.
///
/// Laws (checked by property tests in `romp-core`):
/// `combine(identity(), x) == x`, and `combine` is associative and
/// commutative for every provided implementation.
pub trait ReduceOp<T>: Copy + Send + Sync {
    /// The operator's identity (`0` for `+`, `1` for `*`, `T::MAX` for
    /// `min`, …).
    fn identity(&self) -> T;
    /// Fold two values.
    fn combine(&self, a: T, b: T) -> T;
}

/// `reduction(+ : …)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumOp;
/// `reduction(* : …)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProdOp;
/// `reduction(min : …)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinOp;
/// `reduction(max : …)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxOp;
/// `reduction(& : …)` (integer bit-and).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitAndOp;
/// `reduction(| : …)` (integer bit-or).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitOrOp;
/// `reduction(^ : …)` (integer bit-xor).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitXorOp;
/// `reduction(&& : …)` (logical and over `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogAndOp;
/// `reduction(|| : …)` (logical or over `bool`).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogOrOp;

macro_rules! impl_arith_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for SumOp {
            #[inline] fn identity(&self) -> $t { 0 as $t }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a + b }
        }
        impl ReduceOp<$t> for ProdOp {
            #[inline] fn identity(&self) -> $t { 1 as $t }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a * b }
        }
    )*};
}

macro_rules! impl_minmax_int {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for MinOp {
            #[inline] fn identity(&self) -> $t { <$t>::MAX }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a.min(b) }
        }
        impl ReduceOp<$t> for MaxOp {
            #[inline] fn identity(&self) -> $t { <$t>::MIN }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a.max(b) }
        }
    )*};
}

macro_rules! impl_bit_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for BitAndOp {
            #[inline] fn identity(&self) -> $t { !0 }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a & b }
        }
        impl ReduceOp<$t> for BitOrOp {
            #[inline] fn identity(&self) -> $t { 0 }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a | b }
        }
        impl ReduceOp<$t> for BitXorOp {
            #[inline] fn identity(&self) -> $t { 0 }
            #[inline] fn combine(&self, a: $t, b: $t) -> $t { a ^ b }
        }
    )*};
}

impl_arith_ops!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64);
impl_minmax_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);
impl_bit_ops!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl ReduceOp<f32> for MinOp {
    #[inline]
    fn identity(&self) -> f32 {
        f32::INFINITY
    }
    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }
}
impl ReduceOp<f32> for MaxOp {
    #[inline]
    fn identity(&self) -> f32 {
        f32::NEG_INFINITY
    }
    #[inline]
    fn combine(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }
}
impl ReduceOp<f64> for MinOp {
    #[inline]
    fn identity(&self) -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}
impl ReduceOp<f64> for MaxOp {
    #[inline]
    fn identity(&self) -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}
impl ReduceOp<bool> for LogAndOp {
    #[inline]
    fn identity(&self) -> bool {
        true
    }
    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}
impl ReduceOp<bool> for LogOrOp {
    #[inline]
    fn identity(&self) -> bool {
        false
    }
    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// A shared reduction variable.
///
/// Create it with the pre-construct value of the reduction variable, have
/// every team thread [`contribute`](RedVar::contribute) its private
/// partial exactly once, synchronize (the construct's barrier), then read
/// the combined value with [`RedVar::get`] or take it back with
/// [`RedVar::into_inner`].
#[derive(Debug)]
pub struct RedVar<T, Op> {
    lock: OmpLock,
    value: UnsafeCell<T>,
    op: Op,
}

// SAFETY: all access to `value` is serialized through `lock`.
unsafe impl<T: Send, Op: Send> Send for RedVar<T, Op> {}
unsafe impl<T: Send, Op: Sync> Sync for RedVar<T, Op> {}

impl<T: Clone, Op: ReduceOp<T>> RedVar<T, Op> {
    /// Wrap the incoming value of the reduction variable.
    pub fn new(initial: T, op: Op) -> Self {
        RedVar {
            lock: OmpLock::new(),
            value: UnsafeCell::new(initial),
            op,
        }
    }

    /// The identity a thread should initialize its private copy to.
    pub fn identity(&self) -> T {
        self.op.identity()
    }

    /// Fold a thread's private partial into the shared value
    /// (serialized; call once per thread per construct).
    pub fn contribute(&self, partial: T) {
        self.lock.with(|| {
            // SAFETY: inside the lock.
            let v = unsafe { &mut *self.value.get() };
            *v = self.op.combine(v.clone(), partial);
        });
    }

    /// Read the combined value. Only meaningful after all contributions
    /// have been synchronized-with (e.g. after the construct barrier).
    pub fn get(&self) -> T {
        self.lock.with(|| {
            // SAFETY: inside the lock.
            unsafe { &*self.value.get() }.clone()
        })
    }

    /// Unwrap the final value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn identities() {
        assert_eq!(<SumOp as ReduceOp<i32>>::identity(&SumOp), 0);
        assert_eq!(<ProdOp as ReduceOp<i64>>::identity(&ProdOp), 1);
        assert_eq!(<MinOp as ReduceOp<u32>>::identity(&MinOp), u32::MAX);
        assert_eq!(<MaxOp as ReduceOp<i8>>::identity(&MaxOp), i8::MIN);
        assert_eq!(<MinOp as ReduceOp<f64>>::identity(&MinOp), f64::INFINITY);
        assert_eq!(<BitAndOp as ReduceOp<u8>>::identity(&BitAndOp), 0xFF);
        assert!(<LogAndOp as ReduceOp<bool>>::identity(&LogAndOp));
        assert!(!<LogOrOp as ReduceOp<bool>>::identity(&LogOrOp));
    }

    #[test]
    fn identity_is_neutral() {
        for x in [-5i64, 0, 3, 1_000_000] {
            assert_eq!(SumOp.combine(SumOp.identity(), x), x);
            assert_eq!(ProdOp.combine(ProdOp.identity(), x), x);
            assert_eq!(MinOp.combine(ReduceOp::<i64>::identity(&MinOp), x), x);
            assert_eq!(MaxOp.combine(ReduceOp::<i64>::identity(&MaxOp), x), x);
        }
    }

    #[test]
    fn redvar_combines_concurrent_contributions() {
        let acc = Arc::new(RedVar::new(100i64, SumOp));
        let mut handles = vec![];
        for t in 0..8i64 {
            let acc = acc.clone();
            handles.push(std::thread::spawn(move || {
                // Each thread folds 1000 values privately, contributes once.
                let mut partial = acc.identity();
                for i in 0..1000 {
                    partial += t * 1000 + i;
                }
                acc.contribute(partial);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect: i64 = 100 + (0..8000i64).sum::<i64>();
        assert_eq!(acc.get(), expect);
    }

    #[test]
    fn redvar_preserves_initial_value() {
        // OpenMP: the original variable's value participates in the final
        // combine.
        let acc = RedVar::new(41i32, SumOp);
        acc.contribute(1);
        assert_eq!(acc.into_inner(), 42);
    }

    #[test]
    fn redvar_min_max_float() {
        let acc = RedVar::new(f64::INFINITY, MinOp);
        acc.contribute(3.5);
        acc.contribute(-2.0);
        acc.contribute(10.0);
        assert_eq!(acc.get(), -2.0);
    }
}
