//! Test-only chaos layer: seeded fault injection at the runtime's
//! decision edges.
//!
//! The runtime's hardest bugs — lost wakeups, stranded workers, leaked
//! tasks, torn hot teams — live in the narrow windows between a
//! decision and its publication: between priming a doorbell and waking
//! its chain, between grabbing a chunk and running it, between a
//! worker's last task and its completion signal. Each of PRs 4–6 fixed
//! one such bug found by hand; this module hunts the whole class
//! systematically, in the style of filibuster-like fault-injection
//! suites: every interesting edge carries a `chaos_point!`
//! invocation, and a seeded plan decides — per site, per visit — to
//! inject a panic, a spurious (spec-legal) cancellation request, an
//! artificial delay that widens the race window, or a worker-spawn
//! failure.
//!
//! ## Cost model
//!
//! Everything here is test-only, behind the `chaos` cargo feature.
//! Without the feature the `chaos_point!` macro expands to the
//! constant `None` — the site expression is *discarded unevaluated*, so
//! production builds carry zero instructions per site (asserted by the
//! `disabled_macro_expands_to_none` test below, which passes an
//! undefined symbol through the macro). With the feature but no armed
//! plan, a site costs one relaxed atomic load.
//!
//! ## Fault legality
//!
//! Injection must only produce states a legal program could reach:
//!
//! * **Panics** are thrown only at sites executing *inside* a region
//!   body or task body (under `run_region`'s / the joining master's
//!   `catch_unwind`), where a user closure could equally panic. The
//!   payload is `ChaosPanic` so tests can tell injected panics from
//!   real bugs. Sites in runtime-internal code (doorbell prime/ring,
//!   park, spawn) never configure the panic fault.
//! * **Cancels** are *requests*: the call site routes them through
//!   `ThreadCtx::cancel`, which self-gates on the region's `cancel-var`
//!   snapshot exactly as a user's `omp_cancel!` would. No flag is ever
//!   set directly.
//! * **Delays** (bounded short sleeps) are legal anywhere a thread can
//!   be preempted — which is everywhere. They are the workhorse for
//!   ordering bugs: a delay between doorbell prime and wake is exactly
//!   the schedule that exposes a lost wakeup.
//! * **Spawn failures** are returned to `pool::spawn_worker`, which
//!   already degrades gracefully (PR 6): roll back the thread-limit
//!   reservation, warn, fork a short team.
//!
//! ## Replay
//!
//! A failing soak iteration prints `ROMP_CHAOS_SEED=<n>`; exporting
//! that variable makes `tests/chaos.rs` re-run exactly that plan first.
//! Deterministic regression tests sidestep RNG entirely: a plan with
//! probability 1.0 and a small budget injects on the first visit(s) to
//! its site regardless of thread interleaving.

/// Where a fault can be injected. Always compiled (the macro's argument
/// type), costs nothing when the `chaos` feature is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A worksharing loop is about to run one chunk (`ws_for_*`).
    ChunkGrab,
    /// An explicit task body is about to run (`TaskSystem::execute`).
    TaskExecute,
    /// A thread is about to hunt other deques (`pop_or_steal`).
    TaskSteal,
    /// A thread arrived at a team barrier (`TeamBarrier::wait`).
    BarrierEntry,
    /// The master is priming a hot worker's doorbell (`pool::prime`).
    DoorbellPrime,
    /// The master is waking a hot worker's doorbell (`pool::ring`).
    DoorbellRing,
    /// A waiter reached the park rung of its idle ladder.
    Park,
    /// The pool is about to spawn a worker OS thread.
    WorkerSpawn,
    /// A cancellation check / barrier with a legal cancel edge.
    CancelCheck,
}

/// Faults a call site must act on itself. `Panic` and `Delay` are
/// performed centrally by `poke`; these two need site-local handling
/// (route a cancel request, fail a spawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Issue a (self-gating) cancellation request at this edge.
    Cancel,
    /// Report worker-spawn failure at this edge.
    SpawnFail,
}

/// The injection hook. With the `chaos` feature this forwards the site
/// to [`poke`]; without it the expansion is the constant `None` and the
/// site expression is discarded **unevaluated** — release builds carry
/// no trace of the argument.
#[cfg(feature = "chaos")]
macro_rules! chaos_point {
    ($site:expr) => {
        $crate::chaos::poke($site)
    };
}

/// The injection hook (disabled expansion: constant `None`).
#[cfg(not(feature = "chaos"))]
macro_rules! chaos_point {
    ($site:expr) => {
        ::core::option::Option::<$crate::chaos::Injected>::None
    };
}

pub(crate) use chaos_point;

#[cfg(feature = "chaos")]
pub use armed::*;

#[cfg(feature = "chaos")]
mod armed {
    use super::{Injected, Site};
    use parking_lot::RwLock;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
    use std::sync::Arc;

    /// Fault kinds a plan can attach to a site.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// `panic_any(ChaosPanic)` — thrown inside [`poke`].
        Panic,
        /// Sleep for the plan's delay duration, then proceed normally.
        Delay,
        /// Return [`Injected::Cancel`] to the call site.
        Cancel,
        /// Return [`Injected::SpawnFail`] to the call site.
        SpawnFail,
    }

    /// Panic payload of an injected panic, so tests (and humans reading
    /// a backtrace) can tell chaos from a real bug.
    #[derive(Debug, Clone, Copy)]
    pub struct ChaosPanic;

    const MAX_RULES: usize = 16;

    /// One injection rule: at `site`, with probability `prob` per
    /// visit, inject `fault`.
    #[derive(Debug, Clone, Copy)]
    pub struct Rule {
        pub(crate) site: Site,
        pub(crate) fault: Fault,
        /// Per-visit probability in [0, 1].
        pub(crate) prob: f64,
    }

    /// A seeded, bounded fault-injection plan.
    ///
    /// `from_seed` derives a randomized default mix (which sites get
    /// which faults, at what rates, under what budget) from the seed
    /// itself, so one `u64` fully describes a soak iteration. The
    /// builder methods ([`ChaosPlan::bare`], [`ChaosPlan::with_rule`],
    /// [`ChaosPlan::with_budget`]) construct surgical single-fault
    /// plans for deterministic regression tests.
    #[derive(Debug, Clone)]
    pub struct ChaosPlan {
        seed: u64,
        rules: Vec<Rule>,
        /// Total injections allowed (all sites, all threads).
        budget: u32,
        /// Sleep length for `Fault::Delay`.
        delay: std::time::Duration,
    }

    /// SplitMix64 step — the standard seed expander.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(state: &mut u64) -> f64 {
        (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    impl ChaosPlan {
        /// An empty plan (no rules, zero budget): the regression-test
        /// starting point for [`with_rule`](Self::with_rule).
        pub fn bare(seed: u64) -> Self {
            ChaosPlan {
                seed,
                rules: Vec::new(),
                budget: 0,
                delay: std::time::Duration::from_micros(200),
            }
        }

        /// Derive a full randomized plan from one seed: every fault
        /// class armed at a seed-chosen subset of its legal sites, with
        /// seed-chosen rates and budget.
        pub fn from_seed(seed: u64) -> Self {
            let mut st = seed ^ 0xC0FF_EE00_D15E_A5ED;
            let mut plan = ChaosPlan::bare(seed);
            // (site, fault, max per-visit probability). Panics only at
            // body-covered sites, cancels only through self-gating
            // request edges — see the module docs on legality.
            let menu: &[(Site, Fault, f64)] = &[
                (Site::ChunkGrab, Fault::Panic, 0.02),
                (Site::ChunkGrab, Fault::Delay, 0.05),
                (Site::ChunkGrab, Fault::Cancel, 0.02),
                (Site::TaskExecute, Fault::Panic, 0.05),
                (Site::TaskExecute, Fault::Delay, 0.05),
                (Site::TaskSteal, Fault::Delay, 0.05),
                (Site::BarrierEntry, Fault::Delay, 0.10),
                (Site::DoorbellPrime, Fault::Delay, 0.10),
                (Site::DoorbellRing, Fault::Delay, 0.10),
                (Site::Park, Fault::Delay, 0.10),
                (Site::WorkerSpawn, Fault::SpawnFail, 0.25),
                (Site::CancelCheck, Fault::Cancel, 0.05),
            ];
            for &(site, fault, max_p) in menu {
                // ~60% of the menu armed per seed: plans differ in
                // *shape*, not just rates.
                if unit(&mut st) < 0.6 {
                    plan.rules.push(Rule {
                        site,
                        fault,
                        prob: unit(&mut st) * max_p,
                    });
                }
            }
            plan.budget = 1 + (splitmix(&mut st) % 24) as u32;
            plan.delay = std::time::Duration::from_micros(50 + splitmix(&mut st) % 400);
            plan
        }

        /// The plan's seed (for `ROMP_CHAOS_SEED` replay lines).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Add one injection rule. `prob` is clamped to [0, 1]; rules
        /// beyond an internal cap are ignored (a plan is a test input,
        /// not a data structure to grow).
        pub fn with_rule(mut self, site: Site, fault: Fault, prob: f64) -> Self {
            if self.rules.len() < MAX_RULES {
                self.rules.push(Rule {
                    site,
                    fault,
                    prob: prob.clamp(0.0, 1.0),
                });
            }
            self
        }

        /// Cap total injections across all sites and threads.
        pub fn with_budget(mut self, budget: u32) -> Self {
            self.budget = budget;
            self
        }

        /// Set the sleep length used by `Fault::Delay`.
        pub fn with_delay(mut self, delay: std::time::Duration) -> Self {
            self.delay = delay;
            self
        }
    }

    /// Counters of faults actually injected while a plan was armed.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct InjectedCounts {
        /// Panics thrown.
        pub panics: u64,
        /// Delays slept.
        pub delays: u64,
        /// Cancel requests handed to call sites.
        pub cancels: u64,
        /// Spawn failures handed to call sites.
        pub spawn_fails: u64,
    }

    /// The armed plan plus its runtime state.
    struct PlanState {
        plan: ChaosPlan,
        /// Monotone arming generation: per-thread RNGs reseed when it
        /// changes, so a replayed plan starts from the same stream.
        generation: u64,
        /// Remaining injection budget (goes negative harmlessly under
        /// races; only > 0 admits an injection).
        budget: AtomicI64,
        panics: AtomicU64,
        delays: AtomicU64,
        cancels: AtomicU64,
        spawn_fails: AtomicU64,
    }

    /// Fast-path gate: one relaxed load decides "chaos off".
    static ARMED: AtomicBool = AtomicBool::new(false);
    static GENERATION: AtomicU64 = AtomicU64::new(0);
    static PLAN: RwLock<Option<Arc<PlanState>>> = RwLock::new(None);

    thread_local! {
        /// (generation, rng state) — reseeded per arming so a thread's
        /// decision stream is a function of (plan seed, thread).
        static RNG: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
    }

    /// Disarms the plan it armed when dropped, and exposes the fault
    /// counts accumulated while armed.
    pub struct ChaosGuard {
        state: Arc<PlanState>,
    }

    impl ChaosGuard {
        /// Faults injected so far under this guard's plan.
        pub fn injected(&self) -> InjectedCounts {
            InjectedCounts {
                panics: self.state.panics.load(Ordering::Relaxed),
                delays: self.state.delays.load(Ordering::Relaxed),
                cancels: self.state.cancels.load(Ordering::Relaxed),
                spawn_fails: self.state.spawn_fails.load(Ordering::Relaxed),
            }
        }

        /// The armed plan's seed.
        pub fn seed(&self) -> u64 {
            self.state.plan.seed
        }
    }

    impl Drop for ChaosGuard {
        fn drop(&mut self) {
            let mut slot = PLAN.write();
            // Only disarm our own plan: a later arm() superseded us.
            if let Some(cur) = slot.as_ref() {
                if cur.generation == self.state.generation {
                    *slot = None;
                    ARMED.store(false, Ordering::Release);
                }
            }
        }
    }

    /// Arm `plan` process-wide. The returned guard disarms on drop.
    /// Arming while armed supersedes the previous plan (its guard's
    /// drop then becomes a no-op).
    pub fn arm(plan: ChaosPlan) -> ChaosGuard {
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
        let state = Arc::new(PlanState {
            budget: AtomicI64::new(plan.budget as i64),
            plan,
            generation,
            panics: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            spawn_fails: AtomicU64::new(0),
        });
        *PLAN.write() = Some(state.clone());
        ARMED.store(true, Ordering::Release);
        ChaosGuard { state }
    }

    /// The `chaos_point!` target: decide whether to inject at `site`.
    /// Performs `Panic` (by unwinding with [`ChaosPanic`]) and `Delay`
    /// (by sleeping) itself; returns `Cancel`/`SpawnFail` for the call
    /// site to act on. Returns `None` when nothing fires.
    pub fn poke(site: Site) -> Option<Injected> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let state = PLAN.read().clone()?;
        let (mut fault, mut hit_delay) = (None, false);
        RNG.with(|cell| {
            let (gen, mut st) = cell.get();
            if gen != state.generation {
                // Reseed: plan seed × thread identity × generation.
                st = state.plan.seed
                    ^ crate::lock::os_thread_id().rotate_left(17)
                    ^ state.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                if st == 0 {
                    st = 1;
                }
            }
            for rule in &state.plan.rules {
                if rule.site != site {
                    continue;
                }
                if unit(&mut st) >= rule.prob {
                    continue;
                }
                // Admission is budget-gated so a plan terminates.
                if state.budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                    continue;
                }
                match rule.fault {
                    Fault::Delay => {
                        state.delays.fetch_add(1, Ordering::Relaxed);
                        hit_delay = true;
                    }
                    Fault::Panic => {
                        state.panics.fetch_add(1, Ordering::Relaxed);
                        fault = Some(Fault::Panic);
                    }
                    Fault::Cancel => {
                        state.cancels.fetch_add(1, Ordering::Relaxed);
                        fault = Some(Fault::Cancel);
                    }
                    Fault::SpawnFail => {
                        state.spawn_fails.fetch_add(1, Ordering::Relaxed);
                        fault = Some(Fault::SpawnFail);
                    }
                }
                if fault.is_some() {
                    break;
                }
            }
            cell.set((state.generation, st));
        });
        if hit_delay {
            std::thread::sleep(state.plan.delay);
        }
        match fault {
            Some(Fault::Panic) => std::panic::panic_any(ChaosPanic),
            Some(Fault::Cancel) => Some(Injected::Cancel),
            Some(Fault::SpawnFail) => Some(Injected::SpawnFail),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "chaos"))]
    #[test]
    fn disabled_macro_expands_to_none() {
        // The argument is discarded *unevaluated*: this symbol does not
        // exist, so the test compiling at all proves the expansion
        // carries nothing of the site into release builds.
        fn probe() -> Option<crate::chaos::Injected> {
            chaos_point!(this_symbol_does_not_exist)
        }
        assert!(probe().is_none());
    }

    #[cfg(feature = "chaos")]
    mod armed {
        use crate::chaos::*;

        #[test]
        fn unarmed_poke_is_silent() {
            assert_eq!(poke(Site::ChunkGrab), None);
        }

        #[test]
        fn probability_one_rule_fires_within_budget() {
            let guard = arm(ChaosPlan::bare(7)
                .with_rule(Site::WorkerSpawn, Fault::SpawnFail, 1.0)
                .with_budget(2));
            assert_eq!(poke(Site::WorkerSpawn), Some(Injected::SpawnFail));
            assert_eq!(poke(Site::ChunkGrab), None, "other sites untouched");
            assert_eq!(poke(Site::WorkerSpawn), Some(Injected::SpawnFail));
            assert_eq!(poke(Site::WorkerSpawn), None, "budget exhausted");
            let c = guard.injected();
            assert_eq!(c.spawn_fails, 2);
            assert_eq!(c.panics + c.delays + c.cancels, 0);
        }

        #[test]
        fn guard_drop_disarms() {
            {
                let _g = arm(ChaosPlan::bare(8).with_rule(Site::Park, Fault::Delay, 1.0));
            }
            assert_eq!(poke(Site::Park), None);
        }

        #[test]
        fn injected_panic_carries_chaos_payload() {
            let _g = arm(ChaosPlan::bare(9)
                .with_rule(Site::TaskExecute, Fault::Panic, 1.0)
                .with_budget(1));
            let err = std::panic::catch_unwind(|| poke(Site::TaskExecute)).unwrap_err();
            assert!(err.is::<ChaosPanic>());
        }

        #[test]
        fn from_seed_is_deterministic() {
            let (a, b) = (ChaosPlan::from_seed(42), ChaosPlan::from_seed(42));
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
