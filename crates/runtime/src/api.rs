//! The `omp_*` user API.
//!
//! Free functions mirroring the OpenMP runtime-library routines (spec
//! §18) so ported codes read like their C/Fortran originals. They consult
//! the per-thread region stack, so — unlike [`crate::ThreadCtx`] methods —
//! they work from anywhere, including inside tasks and library code that
//! was not handed a context.

use crate::ctx::with_current;
use crate::icv::{self, tls_override_mut};
use crate::sched::Schedule;

/// `omp_get_thread_num`: this thread's number in the innermost team
/// (0 outside any parallel region).
pub fn omp_get_thread_num() -> usize {
    with_current(|r| r.thread_num, || 0)
}

/// `omp_get_num_threads`: size of the innermost team (1 outside).
pub fn omp_get_num_threads() -> usize {
    with_current(|r| r.team.size(), || 1)
}

/// `omp_in_parallel`: inside an active (size > 1) parallel region?
pub fn omp_in_parallel() -> bool {
    with_current(|r| r.team.active_level > 0, || false)
}

/// `omp_get_level`: number of enclosing parallel regions (active or not).
pub fn omp_get_level() -> usize {
    with_current(|r| r.team.level, || 0)
}

/// `omp_get_active_level`: number of enclosing *active* regions.
pub fn omp_get_active_level() -> usize {
    with_current(|r| r.team.active_level, || 0)
}

/// `omp_get_ancestor_thread_num(level)`: thread number of this thread's
/// ancestor at `level` (0 = initial task). `None` for levels deeper than
/// the current nest (the C API returns -1).
pub fn omp_get_ancestor_thread_num(level: usize) -> Option<usize> {
    with_current(
        |r| {
            if level == r.team.level {
                Some(r.thread_num)
            } else {
                r.team.ancestors.get(level).map(|&(tn, _)| tn)
            }
        },
        || (level == 0).then_some(0),
    )
}

/// `omp_get_team_size(level)`: team size at `level` of the nest.
pub fn omp_get_team_size(level: usize) -> Option<usize> {
    with_current(
        |r| {
            if level == r.team.level {
                Some(r.team.size())
            } else {
                r.team.ancestors.get(level).map(|&(_, sz)| sz)
            }
        },
        || (level == 0).then_some(1),
    )
}

/// `omp_get_max_threads`: team size a `parallel` construct encountered
/// here would request.
pub fn omp_get_max_threads() -> usize {
    let icvs = icv::current();
    let level = omp_get_level();
    icvs.nthreads_for_level(level)
}

/// `omp_get_num_procs`: hardware concurrency.
pub fn omp_get_num_procs() -> usize {
    icv::hardware_threads()
}

/// `omp_get_thread_limit`.
pub fn omp_get_thread_limit() -> usize {
    icv::current().thread_limit
}

/// `omp_set_num_threads`: set the calling thread's `nthreads-var`.
pub fn omp_set_num_threads(n: usize) {
    tls_override_mut(|o| o.num_threads = Some(n.max(1)));
}

/// `omp_set_dynamic`.
pub fn omp_set_dynamic(dynamic: bool) {
    tls_override_mut(|o| o.dynamic = Some(dynamic));
}

/// `omp_get_dynamic`.
pub fn omp_get_dynamic() -> bool {
    icv::current().dynamic
}

/// `omp_set_max_active_levels`.
pub fn omp_set_max_active_levels(levels: usize) {
    tls_override_mut(|o| o.max_active_levels = Some(levels));
}

/// `omp_get_max_active_levels`.
pub fn omp_get_max_active_levels() -> usize {
    icv::current().max_active_levels
}

/// `omp_set_schedule`: set the `run-sched-var` consulted by
/// `schedule(runtime)` loops.
pub fn omp_set_schedule(sched: Schedule) {
    tls_override_mut(|o| o.run_sched = Some(sched));
}

/// `omp_get_schedule`: the `run-sched-var` of the current data
/// environment — this thread's own `omp_set_schedule` override if any,
/// else the enclosing team's fork-time snapshot (what a
/// `schedule(runtime)` loop here actually uses), else the global ICV.
pub fn omp_get_schedule() -> Schedule {
    if let Some(s) = icv::tls_run_sched_override() {
        return s;
    }
    with_current(|r| Some(r.team.run_sched()), || None).unwrap_or_else(|| icv::current().run_sched)
}

/// `omp_get_proc_bind`: the thread-affinity policy of the current
/// region — the fork's `proc_bind` clause if one was given, else the
/// entry of the `bind-var` ICV list (`OMP_PROC_BIND`) for the next
/// nesting level. Where the OS allows, the policy is enforced by
/// place-partitioning the team at fork (see [`crate::affinity`]).
pub fn omp_get_proc_bind() -> crate::icv::ProcBind {
    with_current(|r| Some(r.team.proc_bind()), || None)
        .unwrap_or_else(|| icv::current().proc_bind_for_level(omp_get_level()))
}

/// `omp_get_num_places`: number of places in the place list
/// (`OMP_PLACES`, or one place per hardware thread when unset).
pub fn omp_get_num_places() -> usize {
    crate::affinity::place_list_len()
}

/// `omp_get_place_num`: the place this thread executes in, or `None`
/// when it is unbound (the C API returns -1).
pub fn omp_get_place_num() -> Option<usize> {
    crate::ctx::current_place_partition().map(|(_, _, _, place)| place)
}

/// `omp_get_partition_num_places`: size of the place partition of the
/// innermost implicit task (0 when unbound).
pub fn omp_get_partition_num_places() -> usize {
    crate::ctx::current_place_partition().map_or(0, |(_, _, count, _)| count)
}

/// `omp_get_partition_place_nums`: the place numbers of the innermost
/// implicit task's partition (empty when unbound).
pub fn omp_get_partition_place_nums() -> Vec<usize> {
    crate::ctx::current_place_partition().map_or_else(Vec::new, |(_, first, count, _)| {
        (first..first + count).collect()
    })
}

/// `omp_get_num_teams`: size of the innermost league (1 outside any
/// `teams` construct).
pub fn omp_get_num_teams() -> usize {
    crate::ctx::innermost_league().map_or(1, |(size, _)| size)
}

/// `omp_get_team_num`: this thread's team number in the innermost
/// league (0 outside any `teams` construct).
pub fn omp_get_team_num() -> usize {
    crate::ctx::innermost_league().map_or(0, |(_, num)| num)
}

/// `omp_get_cancellation`: is the cancellation machinery armed
/// (`cancel-var`, from `OMP_CANCELLATION` / `ROMP_CANCELLATION`)?
/// Inside a region this reports the team's fork-time snapshot — what
/// `cancel` in that region actually consults.
pub fn omp_get_cancellation() -> bool {
    with_current(|r| Some(r.team.cancellable()), || None)
        .unwrap_or_else(|| icv::current().cancellation)
}

/// `omp_get_wtime` (re-exported from [`crate::wtime`]).
pub fn omp_get_wtime() -> f64 {
    crate::wtime::get_wtime()
}

/// `omp_get_wtick`.
pub fn omp_get_wtick() -> f64 {
    crate::wtime::get_wtick()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{fork, ForkSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_defaults() {
        // These run on the test thread outside any region.
        assert_eq!(omp_get_thread_num(), 0);
        assert_eq!(omp_get_num_threads(), 1);
        assert!(!omp_in_parallel());
        assert_eq!(omp_get_level(), 0);
        assert_eq!(omp_get_ancestor_thread_num(0), Some(0));
        assert_eq!(omp_get_ancestor_thread_num(3), None);
        assert_eq!(omp_get_team_size(0), Some(1));
        assert!(omp_get_num_procs() >= 1);
    }

    #[test]
    fn api_inside_region_matches_ctx() {
        let checked = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(3), |ctx| {
            assert_eq!(omp_get_thread_num(), ctx.thread_num());
            assert_eq!(omp_get_num_threads(), 3);
            assert!(omp_in_parallel());
            assert_eq!(omp_get_level(), 1);
            assert_eq!(omp_get_active_level(), 1);
            assert_eq!(omp_get_ancestor_thread_num(0), Some(0));
            assert_eq!(
                omp_get_ancestor_thread_num(1),
                Some(ctx.thread_num()),
                "ancestor at own level is self"
            );
            assert_eq!(omp_get_team_size(1), Some(3));
            checked.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(checked.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_levels_reported() {
        crate::icv::with_global_mut(|icvs| icvs.max_active_levels = 2);
        fork(ForkSpec::with_num_threads(2), |outer| {
            let outer_tn = outer.thread_num();
            fork(ForkSpec::with_num_threads(2), move |_inner| {
                assert_eq!(omp_get_level(), 2);
                assert_eq!(
                    omp_get_ancestor_thread_num(1),
                    Some(outer_tn),
                    "level-1 ancestor is the outer thread"
                );
                assert_eq!(omp_get_team_size(1), Some(2));
            });
        });
        crate::icv::with_global_mut(|icvs| icvs.max_active_levels = 1);
    }

    #[test]
    fn set_num_threads_is_thread_local() {
        omp_set_num_threads(2);
        assert_eq!(omp_get_max_threads(), 2);
        let other = std::thread::spawn(omp_get_max_threads).join().unwrap();
        assert_ne!(other, 0);
        // Clean up the TLS override for other tests on this thread.
        crate::icv::TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
    }

    #[test]
    fn set_schedule_round_trips() {
        omp_set_schedule(Schedule::guided_chunk(3));
        assert_eq!(omp_get_schedule(), Schedule::Guided { chunk: 3 });
        crate::icv::TLS_OVERRIDE.with(|o| *o.borrow_mut() = None);
    }
}
