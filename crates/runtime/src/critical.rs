//! Named `critical` sections.
//!
//! OpenMP's `critical [(name)]` maps every *name* to one process-global
//! lock; all unnamed criticals share a single lock. The registry below
//! interns names on first use and leaks the lock storage deliberately —
//! the set of critical names in a program is static and tiny, exactly the
//! assumption libomp makes.

use crate::lock::OmpLock;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

static UNNAMED: OmpLock = OmpLock::new();

fn registry() -> &'static Mutex<HashMap<String, &'static OmpLock>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, &'static OmpLock>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Look up (interning on first use) the lock for a critical-section name.
pub fn lock_for(name: &str) -> &'static OmpLock {
    let mut map = registry().lock();
    if let Some(l) = map.get(name) {
        return l;
    }
    let leaked: &'static OmpLock = Box::leak(Box::new(OmpLock::new()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Execute `f` inside the **unnamed** global critical section.
pub fn critical<R>(f: impl FnOnce() -> R) -> R {
    UNNAMED.with(f)
}

/// Execute `f` inside the critical section identified by `name`.
pub fn critical_named<R>(name: &str, f: impl FnOnce() -> R) -> R {
    lock_for(name).with(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn same_name_same_lock() {
        let a = lock_for("alpha") as *const OmpLock;
        let b = lock_for("alpha") as *const OmpLock;
        let c = lock_for("beta") as *const OmpLock;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let inside = inside.clone();
            let max_seen = max_seen.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    critical_named("mutex-test", || {
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "two threads overlapped");
    }

    #[test]
    fn different_names_do_not_exclude() {
        // A thread holding "left" must not block a thread taking "right".
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b2 = barrier.clone();
        let h = std::thread::spawn(move || {
            critical_named("left-xyzzy", || {
                b2.wait(); // hold "left" until main has taken "right"
                b2.wait();
            });
        });
        barrier.wait();
        critical_named("right-xyzzy", || {});
        barrier.wait();
        h.join().unwrap();
    }

    #[test]
    fn unnamed_critical_returns_value() {
        assert_eq!(critical(|| 7), 7);
    }
}
