//! Worksharing-loop schedules.
//!
//! This module contains the *pure* scheduling mathematics: given an
//! iteration space, a team size and a schedule kind, which iterations does
//! each thread run? The shared-state dispatchers that `dynamic` and
//! `guided` need at run time live in [`crate::team`]; the driver that ties
//! both together is [`crate::loops`].
//!
//! The semantics follow OpenMP 5.2 §11.5.3 (the paper implements the
//! `schedule` clause on its worksharing-loop directive):
//!
//! * `static` (no chunk): the iteration space is divided into
//!   near-equal contiguous blocks, at most one per thread; the first
//!   `rem` threads receive one extra iteration.
//! * `static,c`: chunks of size `c` are assigned round-robin,
//!   thread `t` gets chunks `t, t+n, t+2n, …`.
//! * `dynamic[,c]`: chunks of size `c` (default 1) are handed out
//!   first-come-first-served from a shared counter.
//! * `guided[,c]`: chunk sizes start large and decay exponentially —
//!   each grab takes `⌈remaining / (2·nthreads)⌉` iterations, never less
//!   than `c` (except the final chunk).
//! * `runtime`: whatever the `run-sched-var` ICV says (`OMP_SCHEDULE`).
//! * `auto`: implementation choice; we map it to `static`.

use std::fmt;
use std::ops::Range;

/// A worksharing-loop schedule, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)` / `schedule(static, chunk)`.
    Static {
        /// `None` = one contiguous block per thread; `Some(c)` = round-robin
        /// chunks of `c` iterations.
        chunk: Option<u64>,
    },
    /// `schedule(dynamic, chunk)`; chunk defaults to 1.
    Dynamic {
        /// Iterations per grab from the shared counter.
        chunk: u64,
    },
    /// `schedule(guided, chunk)`; chunk is the minimum grab size.
    Guided {
        /// Minimum iterations per grab (except the last chunk).
        chunk: u64,
    },
    /// `schedule(runtime)` — resolved against the `run-sched-var` ICV at
    /// the loop entry.
    Runtime,
    /// `schedule(auto)` — the implementation chooses; we use `static`.
    Auto,
}

impl Default for Schedule {
    /// OpenMP leaves the scheduleless default implementation-defined;
    /// like libomp we use block `static`.
    fn default() -> Self {
        Schedule::Static { chunk: None }
    }
}

impl Schedule {
    /// `schedule(static)`.
    pub const fn static_block() -> Self {
        Schedule::Static { chunk: None }
    }

    /// `schedule(static, c)`.
    pub const fn static_chunk(c: u64) -> Self {
        Schedule::Static { chunk: Some(c) }
    }

    /// `schedule(dynamic)` with the spec-default chunk of 1.
    pub const fn dynamic() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }

    /// `schedule(dynamic, c)`.
    pub const fn dynamic_chunk(c: u64) -> Self {
        Schedule::Dynamic { chunk: c }
    }

    /// `schedule(guided)` with the spec-default minimum chunk of 1.
    pub const fn guided() -> Self {
        Schedule::Guided { chunk: 1 }
    }

    /// `schedule(guided, c)`.
    pub const fn guided_chunk(c: u64) -> Self {
        Schedule::Guided { chunk: c }
    }

    /// Parse the `OMP_SCHEDULE` syntax: `kind[,chunk]` with optional
    /// `monotonic:`/`nonmonotonic:` modifier (accepted and ignored — all
    /// our dispatchers are monotonic per thread).
    pub fn parse(s: &str) -> Result<Self, ScheduleParseError> {
        let s = s.trim();
        let s = s
            .strip_prefix("monotonic:")
            .or_else(|| s.strip_prefix("nonmonotonic:"))
            .unwrap_or(s)
            .trim();
        let (kind, chunk) = match s.split_once(',') {
            Some((k, c)) => {
                let c: u64 = c
                    .trim()
                    .parse()
                    .map_err(|_| ScheduleParseError::BadChunk(c.trim().to_string()))?;
                if c == 0 {
                    return Err(ScheduleParseError::ZeroChunk);
                }
                (k.trim(), Some(c))
            }
            None => (s, None),
        };
        match kind {
            "static" => Ok(Schedule::Static { chunk }),
            "dynamic" => Ok(Schedule::Dynamic {
                chunk: chunk.unwrap_or(1),
            }),
            "guided" => Ok(Schedule::Guided {
                chunk: chunk.unwrap_or(1),
            }),
            "auto" | "runtime" if chunk.is_some() => {
                Err(ScheduleParseError::ChunkOnAuto(kind.to_string()))
            }
            "auto" => Ok(Schedule::Auto),
            "runtime" => Ok(Schedule::Runtime),
            other => Err(ScheduleParseError::UnknownKind(other.to_string())),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Static { chunk: None } => write!(f, "static"),
            Schedule::Static { chunk: Some(c) } => write!(f, "static,{c}"),
            Schedule::Dynamic { chunk } => write!(f, "dynamic,{chunk}"),
            Schedule::Guided { chunk } => write!(f, "guided,{chunk}"),
            Schedule::Runtime => write!(f, "runtime"),
            Schedule::Auto => write!(f, "auto"),
        }
    }
}

/// Errors from [`Schedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleParseError {
    /// The kind was not one of static/dynamic/guided/auto/runtime.
    UnknownKind(String),
    /// The chunk was not a positive integer.
    BadChunk(String),
    /// A chunk of zero is invalid.
    ZeroChunk,
    /// `auto` and `runtime` do not take a chunk size.
    ChunkOnAuto(String),
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleParseError::UnknownKind(k) => write!(f, "unknown schedule kind `{k}`"),
            ScheduleParseError::BadChunk(c) => write!(f, "invalid chunk size `{c}`"),
            ScheduleParseError::ZeroChunk => write!(f, "chunk size must be >= 1"),
            ScheduleParseError::ChunkOnAuto(k) => {
                write!(f, "schedule kind `{k}` does not take a chunk size")
            }
        }
    }
}

impl std::error::Error for ScheduleParseError {}

/// Iterator over the chunks a given thread runs under a **static**
/// schedule of a normalized iteration space `0..trip`.
///
/// Static scheduling needs no shared state: every thread derives its
/// chunks independently from `(trip, nthreads, thread_num, chunk)`. This is
/// exactly the contract of libomp's `__kmpc_for_static_init`.
#[derive(Debug, Clone)]
pub struct StaticChunks {
    trip: u64,
    stride: u64,
    next: u64,
    chunk: u64,
    block_mode: bool,
    exhausted: bool,
}

impl StaticChunks {
    /// Plan the chunks thread `thread_num` of `nthreads` runs for a loop
    /// with `trip` iterations.
    pub fn new(trip: u64, nthreads: usize, thread_num: usize, chunk: Option<u64>) -> Self {
        assert!(nthreads > 0, "team size must be positive");
        assert!(thread_num < nthreads, "thread_num out of range");
        let n = nthreads as u64;
        let t = thread_num as u64;
        match chunk {
            None => {
                // Block distribution: first `rem` threads get q+1 iterations.
                let q = trip / n;
                let rem = trip % n;
                let (lo, size) = if t < rem {
                    (t * (q + 1), q + 1)
                } else {
                    (rem * (q + 1) + (t - rem) * q, q)
                };
                StaticChunks {
                    trip,
                    stride: 0,
                    next: lo,
                    chunk: size,
                    block_mode: true,
                    exhausted: size == 0,
                }
            }
            Some(c) => {
                assert!(c > 0, "chunk must be positive");
                StaticChunks {
                    trip,
                    stride: n * c,
                    next: t * c,
                    chunk: c,
                    block_mode: false,
                    exhausted: t * c >= trip,
                }
            }
        }
    }
}

impl Iterator for StaticChunks {
    type Item = Range<u64>;

    fn next(&mut self) -> Option<Range<u64>> {
        if self.exhausted {
            return None;
        }
        let lo = self.next;
        let hi = (lo + self.chunk).min(self.trip);
        if self.block_mode {
            self.exhausted = true;
        } else {
            self.next = lo + self.stride;
            if self.next >= self.trip {
                self.exhausted = true;
            }
        }
        Some(lo..hi)
    }
}

/// Next chunk size for a **guided** schedule: `⌈remaining / (2·nthreads)⌉`
/// clamped below by `min_chunk` and above by `remaining`.
#[inline]
pub fn guided_grab(remaining: u64, nthreads: usize, min_chunk: u64) -> u64 {
    if remaining == 0 {
        return 0;
    }
    let n = 2 * nthreads as u64;
    let sz = remaining.div_ceil(n).max(min_chunk);
    sz.min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_all(trip: u64, nthreads: usize, chunk: Option<u64>) -> Vec<Vec<Range<u64>>> {
        (0..nthreads)
            .map(|t| StaticChunks::new(trip, nthreads, t, chunk).collect())
            .collect()
    }

    fn assert_exact_cover(trip: u64, per_thread: &[Vec<Range<u64>>]) {
        let mut seen = vec![0u32; trip as usize];
        for chunks in per_thread {
            for r in chunks {
                assert!(r.start < r.end, "empty chunk emitted: {r:?}");
                assert!(r.end <= trip);
                for i in r.clone() {
                    seen[i as usize] += 1;
                }
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "iterations not covered exactly once"
        );
    }

    #[test]
    fn static_block_covers_exactly() {
        for trip in [0u64, 1, 2, 7, 64, 100, 101] {
            for nth in [1usize, 2, 3, 4, 7, 8, 16] {
                assert_exact_cover(trip, &collect_all(trip, nth, None));
            }
        }
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for trip in [0u64, 1, 5, 64, 100, 101, 1000] {
            for nth in [1usize, 2, 3, 8] {
                for c in [1u64, 2, 3, 16, 1000] {
                    assert_exact_cover(trip, &collect_all(trip, nth, Some(c)));
                }
            }
        }
    }

    #[test]
    fn static_block_is_balanced() {
        let per = collect_all(103, 4, None);
        let sizes: Vec<u64> = per
            .iter()
            .map(|c| c.iter().map(|r| r.end - r.start).sum())
            .collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    fn static_block_single_contiguous_chunk_per_thread() {
        for t in collect_all(1000, 8, None) {
            assert!(t.len() <= 1);
        }
    }

    #[test]
    fn static_chunk_round_robin_order() {
        // 10 iterations, 2 threads, chunk 2: t0 -> [0,2) [4,6) [8,10); t1 -> [2,4) [6,8)
        let per = collect_all(10, 2, Some(2));
        assert_eq!(per[0], vec![0..2, 4..6, 8..10]);
        assert_eq!(per[1], vec![2..4, 6..8]);
    }

    #[test]
    fn zero_trip_loop_yields_nothing() {
        assert!(StaticChunks::new(0, 4, 0, None).next().is_none());
        assert!(StaticChunks::new(0, 4, 2, Some(8)).next().is_none());
    }

    #[test]
    fn guided_grab_decays_and_terminates() {
        let mut remaining = 10_000u64;
        let mut grabs = vec![];
        while remaining > 0 {
            let g = guided_grab(remaining, 4, 1);
            assert!(g >= 1 && g <= remaining);
            grabs.push(g);
            remaining -= g;
        }
        // Sizes never increase.
        for w in grabs.windows(2) {
            assert!(w[1] <= w[0], "guided chunks grew: {grabs:?}");
        }
        assert_eq!(grabs.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn guided_grab_respects_min_chunk() {
        let g = guided_grab(100, 16, 50);
        assert_eq!(g, 50);
        // Final partial chunk may undercut the minimum.
        assert_eq!(guided_grab(30, 16, 50), 30);
    }

    #[test]
    fn parse_all_kinds() {
        assert_eq!(
            Schedule::parse("static").unwrap(),
            Schedule::Static { chunk: None }
        );
        assert_eq!(
            Schedule::parse("static,16").unwrap(),
            Schedule::Static { chunk: Some(16) }
        );
        assert_eq!(
            Schedule::parse("dynamic").unwrap(),
            Schedule::Dynamic { chunk: 1 }
        );
        assert_eq!(
            Schedule::parse(" dynamic , 8 ").unwrap(),
            Schedule::Dynamic { chunk: 8 }
        );
        assert_eq!(
            Schedule::parse("guided,4").unwrap(),
            Schedule::Guided { chunk: 4 }
        );
        assert_eq!(Schedule::parse("auto").unwrap(), Schedule::Auto);
        assert_eq!(Schedule::parse("runtime").unwrap(), Schedule::Runtime);
        assert_eq!(
            Schedule::parse("nonmonotonic:dynamic,4").unwrap(),
            Schedule::Dynamic { chunk: 4 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Schedule::parse("fair"),
            Err(ScheduleParseError::UnknownKind(_))
        ));
        assert!(matches!(
            Schedule::parse("dynamic,zero"),
            Err(ScheduleParseError::BadChunk(_))
        ));
        assert!(matches!(
            Schedule::parse("dynamic,0"),
            Err(ScheduleParseError::ZeroChunk)
        ));
        // Empty input and a bare modifier both fall through to the kind
        // match with an empty kind string.
        assert!(matches!(
            Schedule::parse(""),
            Err(ScheduleParseError::UnknownKind(_))
        ));
        assert!(matches!(
            Schedule::parse("monotonic:"),
            Err(ScheduleParseError::UnknownKind(_))
        ));
        // The chunk is validated before the kind, even for bad kinds.
        assert!(matches!(
            Schedule::parse("fair,nope"),
            Err(ScheduleParseError::BadChunk(_))
        ));
    }

    #[test]
    fn parse_rejects_chunk_on_auto_and_runtime() {
        for kind in ["auto", "runtime"] {
            let e = Schedule::parse(&format!("{kind},4")).unwrap_err();
            assert_eq!(e, ScheduleParseError::ChunkOnAuto(kind.to_string()));
            assert!(e.to_string().contains("does not take a chunk size"), "{e}");
        }
        // The modifier prefix does not change the rule.
        assert!(matches!(
            Schedule::parse("monotonic:auto,8"),
            Err(ScheduleParseError::ChunkOnAuto(_))
        ));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            Schedule::static_block(),
            Schedule::static_chunk(4),
            Schedule::dynamic_chunk(2),
            Schedule::guided_chunk(8),
            Schedule::Auto,
            Schedule::Runtime,
        ] {
            assert_eq!(Schedule::parse(&s.to_string()).unwrap(), s);
        }
    }
}
