//! Per-thread context inside a parallel region.
//!
//! Every team thread's copy of the outlined region closure receives a
//! [`ThreadCtx`]: the handle through which all constructs — barriers,
//! worksharing loops, `single`, `sections`, tasks — are reached. It is
//! the analogue of the `(global_tid, bound_tid)` pair libomp passes to
//! outlined functions, fattened into an actual capability object.
//!
//! The `'scope` lifetime parameter plays the same role as
//! `std::thread::Scope`'s: closures handed to [`ThreadCtx::task`] may
//! borrow anything that outlives the region, because the region's
//! implicit end barrier drains all tasks before `fork` returns.

use crate::barrier::BarrierLocal;
use crate::lock::os_thread_id;
use crate::task::{
    current_children, current_groups, in_final, innermost_group, make_raw_task, FinalGuard,
    TaskDeps, TaskGroup, TaskHooks, GROUP_STACK,
};
use crate::team::Team;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where am I in the region nest? One entry per enclosing parallel
/// region on this OS thread.
pub(crate) struct RegionInfo {
    pub team: Arc<Team>,
    pub thread_num: usize,
}

thread_local! {
    pub(crate) static REGION_STACK: RefCell<Vec<RegionInfo>> = const { RefCell::new(Vec::new()) };
}

/// `(level, active_level)` seen by a `parallel` construct starting on
/// the current thread.
pub(crate) fn forking_position() -> (usize, usize) {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            None => (0, 0),
            Some(top) => (top.team.level, top.team.active_level),
        }
    })
}

/// Ancestor chain for a team forked from the current position:
/// `(thread_num, team_size)` from the initial implicit task down to
/// here. Separate from [`forking_position`] so the hot fast path never
/// pays the clone — only cold team construction needs the chain.
pub(crate) fn forking_ancestors() -> Vec<(usize, usize)> {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            None => vec![(0, 1)],
            Some(top) => {
                let mut chain = top.team.ancestors.clone();
                chain.push((top.thread_num, top.team.size()));
                chain
            }
        }
    })
}

/// Read a field of the innermost region, with a default for the
/// sequential part.
pub(crate) fn with_current<R>(f: impl FnOnce(&RegionInfo) -> R, default: impl FnOnce() -> R) -> R {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            Some(top) => f(top),
            None => default(),
        }
    })
}

/// The calling thread's inherited place partition: `(place list, first
/// place, place count, current place)` from the innermost enclosing
/// region that carries places. `None` outside any bound region — the
/// initial thread then partitions the full `OMP_PLACES` list. Regions
/// forked with `proc_bind(false)` build no partition of their own, so
/// the lookup walks outward past them (OpenMP inherits
/// `place-partition-var` through unbound regions).
#[allow(clippy::type_complexity)] // one tuple, one internal caller
pub(crate) fn current_place_partition() -> Option<(Arc<Vec<Vec<usize>>>, usize, usize, usize)> {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        for r in stack.iter().rev() {
            if let Some(p) = r.team.places() {
                let (first, count) = p.parts[r.thread_num];
                return Some((p.list.clone(), first, count, p.place_of[r.thread_num]));
            }
        }
        None
    })
}

/// The innermost enclosing **league** region (`teams` construct), as
/// `(num_teams, team_num)` — the league team's size and the calling
/// thread's position in it (constant through nested parallel regions
/// inside a team). `None` outside any league.
pub(crate) fn innermost_league() -> Option<(usize, usize)> {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        for r in stack.iter().rev() {
            if r.team.is_league() {
                return Some((r.team.size(), r.thread_num));
            }
        }
        None
    })
}

/// Marker payload used to unwind sibling threads when one team member
/// panics; the master rethrows the original payload, not this one.
pub struct SiblingPanic;

/// `cancel taskgroup` as a free function, callable from inside a task
/// body — where OpenMP says the construct belongs, and where no
/// `&ThreadCtx` can be captured (task closures must be `Send`;
/// `ThreadCtx` is not `Sync`). Consults the executing thread's region
/// for the `cancel-var` snapshot and its task-group TLS (maintained by
/// the task executor) for the innermost group. The directive front
/// ends route `cancel taskgroup` here.
///
/// # Panics
///
/// With cancellation armed, if the current task belongs to no
/// taskgroup (a constraint violation in OpenMP).
pub fn cancel_taskgroup() -> bool {
    if !current_cancellable() {
        return false;
    }
    // Deliberate user-facing panic, not a runtime-path hazard: reaching
    // this with no enclosing taskgroup is a constraint violation in the
    // *caller's* program (documented above), thrown on the caller's own
    // thread inside its region body — the catch_unwind in `run_region`
    // contains it and the master rethrows it like any user panic.
    let group = innermost_group()
        .unwrap_or_else(|| panic!("cancel(taskgroup) must be nested inside a taskgroup region"));
    if !group.cancelled.swap(true, Ordering::Release) {
        crate::stats::bump(&crate::stats::stats().cancels_activated);
    }
    true
}

/// `cancellation point taskgroup` as a free function (see
/// [`cancel_taskgroup`]): has the current task's innermost taskgroup
/// been cancelled? Always `false` while `cancel-var` is off or outside
/// any taskgroup.
pub fn cancellation_point_taskgroup() -> bool {
    if !current_cancellable() {
        return false;
    }
    innermost_group().is_some_and(|g| g.cancelled.load(Ordering::Acquire))
}

/// The effective `cancel-var` at the current execution point: the
/// innermost region's fork-time snapshot, else the global ICV.
fn current_cancellable() -> bool {
    with_current(
        |r| r.team.cancellable(),
        || crate::icv::current().cancellation,
    )
}

/// Construct kind named by a `cancel` / `cancellation point` directive
/// (OpenMP 5.2 §11.2: the *construct-type-clause*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// `cancel parallel`: abandon the innermost enclosing parallel
    /// region — threads skip remaining barriers and constructs and
    /// proceed (cooperatively) to the region end; tasks that have not
    /// started are discarded.
    Parallel,
    /// `cancel for`: stop the innermost enclosing worksharing loop —
    /// no further chunks are dispatched once the request is observed
    /// (chunk-granular: a chunk already claimed runs to completion).
    For,
    /// `cancel sections`: as [`For`](CancelKind::For), for the
    /// `sections` construct (same dispatch machinery underneath).
    Sections,
    /// `cancel taskgroup`: cancel the innermost taskgroup of the
    /// current task — member tasks that have not started are discarded
    /// without executing their bodies.
    Taskgroup,
}

/// Clause record of one `task` construct: `depend(in/out/inout: …)`,
/// `if(expr)` and `final(expr)`. The directive front ends accumulate
/// clauses into this and hand it to [`ThreadCtx::task_spec`].
///
/// ```
/// use romp_runtime::{fork, ForkSpec, TaskSpec};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let stages = AtomicUsize::new(0);
/// let token = 0u8; // any storage location works as a dependence token
/// fork(ForkSpec::with_num_threads(2), |ctx| {
///     if ctx.is_master() {
///         // Writer before reader, whichever thread runs them.
///         ctx.task_spec(TaskSpec::new().output(&token), || {
///             stages.fetch_add(1, Ordering::SeqCst);
///         });
///         ctx.task_spec(TaskSpec::new().input(&token), || {
///             assert_eq!(stages.load(Ordering::SeqCst), 1);
///             stages.fetch_add(1, Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(stages.load(Ordering::SeqCst), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSpec {
    /// The accumulated `depend` clauses.
    pub deps: TaskDeps,
    /// `if(expr)`: `Some(false)` makes the task undeferred (executed
    /// immediately by the encountering thread, after its dependences
    /// are satisfied).
    pub if_clause: Option<bool>,
    /// `final(expr)`: `Some(true)` makes the task final — it executes
    /// undeferred, and every task created during its execution is an
    /// included task (undeferred and itself final). The cut-off idiom:
    /// `final(depth >= CUTOFF)` stops paying deferral overhead below
    /// the cut-off.
    ///
    /// **Divergence from OpenMP**: the spec keeps the final task itself
    /// deferrable and only *descendants* included. In romp a task body
    /// cannot reach the region context (`&ThreadCtx` is not `Send`), so
    /// descendants are spawned by code running on the encountering
    /// thread — which is exactly what executing the final task inline
    /// achieves. Code that needs the spawn to stay asynchronous at the
    /// cut-off level should guard with `if` instead of `final`.
    pub final_clause: Option<bool>,
}

impl TaskSpec {
    /// Empty spec: a plain deferred task.
    pub fn new() -> Self {
        TaskSpec::default()
    }

    /// Add a `depend(in: x)` dependence.
    pub fn input<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.input(x);
        self
    }

    /// Add a `depend(out: x)` dependence.
    pub fn output<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.output(x);
        self
    }

    /// Add a `depend(inout: x)` dependence.
    pub fn inout<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.inout(x);
        self
    }

    /// The `if` clause.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.if_clause = Some(cond);
        self
    }

    /// The `final` clause.
    pub fn final_clause(mut self, cond: bool) -> Self {
        self.final_clause = Some(cond);
        self
    }
}

/// Clause record of one `taskloop` construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskloopSpec {
    /// `grainsize(g)`: iterations per task; 0 = implementation default.
    pub grainsize: usize,
    /// `num_tasks(n)`: create (at most) `n` tasks; 0 = unset. Wins over
    /// `grainsize` when both are given.
    pub num_tasks: usize,
    /// `nogroup`: skip the implicit taskgroup (the encountering thread
    /// does not wait for the generated tasks).
    pub nogroup: bool,
}

impl TaskloopSpec {
    /// Default spec: implementation-chosen grainsize, implicit taskgroup.
    pub fn new() -> Self {
        TaskloopSpec::default()
    }

    /// The `grainsize` clause.
    pub fn grainsize(mut self, g: usize) -> Self {
        self.grainsize = g;
        self
    }

    /// The `num_tasks` clause.
    pub fn num_tasks(mut self, n: usize) -> Self {
        self.num_tasks = n;
        self
    }

    /// The `nogroup` clause.
    pub fn nogroup(mut self) -> Self {
        self.nogroup = true;
        self
    }
}

/// The per-thread handle to a parallel region.
///
/// Constructed by the runtime (one per team thread per region) and passed
/// to the outlined region closure. All methods take `&self`; the mutable
/// bookkeeping (construct generation, barrier sense, steal seed) is in
/// `Cell`s so user code can call constructs from nested helper closures.
pub struct ThreadCtx<'scope> {
    team: Arc<Team>,
    thread_num: usize,
    ws_gen: Cell<u64>,
    barrier_local: RefCell<BarrierLocal>,
    /// Children of this thread's *implicit* task (targets of `taskwait`
    /// outside any explicit task). Lazily allocated: regions that never
    /// spawn tasks — the overwhelming fast path — skip the heap
    /// round-trip per thread per region.
    implicit_children: std::sync::OnceLock<Arc<AtomicUsize>>,
    steal_seed: Cell<u64>,
    /// Per-thread reduction-construct counter (see
    /// [`reduce_value`](Self::reduce_value)).
    red_gen: Cell<u64>,
    /// Per-thread cancellable-construct counter: bumped at every
    /// worksharing loop / `sections` construct. Team threads encounter
    /// the same construct sequence (an OpenMP requirement), so these
    /// counters agree across the team and `Team::cancel_ws` can name a
    /// construct by generation without any end-of-construct reset.
    cancel_gen: Cell<u64>,
    /// Generation of the innermost open cancellable worksharing
    /// construct on this thread (`u64::MAX` = none): what a
    /// `cancel(For/Sections)` from the body targets.
    active_ws: Cell<u64>,
    /// Invariant over `'scope` (see module docs).
    _scope: PhantomData<Cell<&'scope ()>>,
}

impl<'scope> ThreadCtx<'scope> {
    pub(crate) fn new(team: Arc<Team>, thread_num: usize) -> Self {
        ThreadCtx {
            team,
            thread_num,
            ws_gen: Cell::new(0),
            barrier_local: RefCell::new(BarrierLocal::default()),
            implicit_children: std::sync::OnceLock::new(),
            steal_seed: Cell::new(os_thread_id() | 1),
            red_gen: Cell::new(0),
            cancel_gen: Cell::new(0),
            active_ws: Cell::new(u64::MAX),
            _scope: PhantomData,
        }
    }

    /// This thread's number within the team (`omp_get_thread_num`);
    /// 0 is the master.
    #[inline]
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    /// Team size (`omp_get_num_threads`).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.team.size()
    }

    /// Is this the master (thread 0)?
    #[inline]
    pub fn is_master(&self) -> bool {
        self.thread_num == 0
    }

    /// Nesting level of the enclosing region (`omp_get_level`).
    #[inline]
    pub fn level(&self) -> usize {
        self.team.level
    }

    /// The region's effective thread-affinity policy
    /// (`omp_get_proc_bind`): the fork's `proc_bind` clause if one was
    /// given, else the per-level `bind-var` ICV. Enforced through the
    /// team's place partition where the platform supports
    /// `sched_setaffinity`; advisory elsewhere.
    pub fn proc_bind(&self) -> crate::icv::ProcBind {
        self.team.proc_bind()
    }

    /// This thread's inherited place sub-partition, as place indices
    /// into the `OMP_PLACES` list (`omp_get_partition_place_nums`).
    /// Empty when the region runs unbound. Under an outer
    /// `proc_bind(spread)` team, sibling threads report **disjoint**
    /// partitions — the slice their own nested teams will stay inside.
    pub fn place_partition(&self) -> Vec<usize> {
        match self.team.places() {
            None => Vec::new(),
            Some(p) => {
                let (first, count) = p.parts[self.thread_num];
                (first..first + count).collect()
            }
        }
    }

    /// The place this thread is bound to (`omp_get_place_num`), as an
    /// index into the `OMP_PLACES` list; `None` when unbound.
    pub fn place_num(&self) -> Option<usize> {
        self.team.places().map(|p| p.place_of[self.thread_num])
    }

    /// League geometry (`omp_get_num_teams`, `omp_get_team_num`): when
    /// this region — or an enclosing one — is a `teams` league, the
    /// league size and this thread's team number; `(1, 0)` otherwise.
    pub fn league_position(&self) -> (usize, usize) {
        innermost_league().unwrap_or((1, 0))
    }

    pub(crate) fn team(&self) -> &Arc<Team> {
        &self.team
    }

    /// The implicit task's children counter (allocated on first use).
    fn implicit_children(&self) -> &Arc<AtomicUsize> {
        self.implicit_children
            .get_or_init(|| Arc::new(AtomicUsize::new(0)))
    }

    /// Next worksharing-construct generation for this thread.
    pub(crate) fn next_gen(&self) -> u64 {
        let g = self.ws_gen.get();
        self.ws_gen.set(g + 1);
        g
    }

    fn panic_if_aborted(&self) {
        if self.team.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(SiblingPanic);
        }
    }

    /// Raw team barrier (no task draining). Panics with a sibling marker
    /// if the team aborted; returns `false` (without an episode having
    /// completed) when the region was cancelled — barriers are
    /// cancellation points, so a blocked thread must be released to
    /// proceed to the region end.
    pub(crate) fn team_barrier(&self) -> bool {
        // Chaos: a spurious-but-legal cancellation request at a barrier
        // — exactly what a user's `omp_cancel!(parallel)` on a sibling
        // thread looks like. Self-gating: `cancel` is a no-op when the
        // region's cancel-var snapshot is off.
        if matches!(
            crate::chaos::chaos_point!(crate::chaos::Site::CancelCheck),
            Some(crate::chaos::Injected::Cancel)
        ) {
            self.cancel(CancelKind::Parallel);
        }
        let ok = self.team.barrier.wait(
            self.thread_num,
            &mut self.barrier_local.borrow_mut(),
            &self.team.abort,
            &self.team.cancel_parallel,
        );
        if !ok {
            if self.team.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            return false;
        }
        true
    }

    /// Explicit barrier (`#pragma omp barrier`): helps execute pending
    /// explicit tasks, then synchronizes the team. No thread proceeds
    /// until all threads have arrived *and* every deferred task has
    /// completed.
    ///
    /// A barrier is a cancellation point: once `cancel parallel` is
    /// activated it returns immediately (and a thread already blocked in
    /// an episode is released), so every thread can reach the region
    /// end without waiting for siblings that skipped the barrier.
    pub fn barrier(&self) {
        loop {
            self.help_tasks_while_pending();
            if !self.team_barrier() {
                return;
            }
            // After the episode, task counts are stable: creations
            // happen-before the barrier, so all threads agree.
            if self.team.tasks.pending() == 0 {
                break;
            }
        }
    }

    /// The implicit barrier at the end of the region body; unlike
    /// [`barrier`](Self::barrier) it does not panic on abort (the region
    /// is ending anyway and the master rethrows the real payload).
    ///
    /// **Hot teams** skip the closing barrier episode entirely: each
    /// thread drains the task graph and leaves; the master's join on
    /// `Team::remaining` is the region-end rendezvous (no thread can
    /// observe the region as finished before every thread has signalled
    /// completion), and the next fork's doorbell ring is the release.
    /// That saves one full barrier episode — with its wake-everyone
    /// broadcast — per parallel region on the fast path.
    pub(crate) fn end_of_region_barrier(&self) {
        if self.team.hot {
            self.help_tasks_while_pending();
            return;
        }
        loop {
            self.help_tasks_while_pending();
            if self.team.cancel_parallel.load(Ordering::Relaxed) {
                // Cancelled region: threads skipped mid-region barriers
                // unevenly, so closing episodes could never line up.
                // The task drain above (remaining tasks discard) is the
                // thread's whole obligation; the cold join's remaining
                // counter is the actual rendezvous.
                return;
            }
            let ok = self.team.barrier.wait(
                self.thread_num,
                &mut self.barrier_local.borrow_mut(),
                &self.team.abort,
                &self.team.cancel_parallel,
            );
            if !ok {
                if self.team.abort.load(Ordering::Relaxed) {
                    return;
                }
                // Cancelled mid-wait: drain-and-leave via the check above.
                continue;
            }
            if self.team.tasks.pending() == 0 {
                return;
            }
        }
    }

    /// Help retire the team's task graph: execute (and steal) tasks
    /// while *any* task is live team-wide, not merely until our deques
    /// look empty. Waiting threads must not park in the barrier while a
    /// dependence graph is still producing work — a stalled task is
    /// released onto its *finisher's* deque, so a parked sibling would
    /// otherwise never pick it up and the graph would drain serially on
    /// one thread. (`work_until` backs off to a sleep when nothing is
    /// stealable, so waiting on one long task does not burn the core.)
    /// Bails out on team abort (the barrier wait reports it).
    fn help_tasks_while_pending(&self) {
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.team.tasks.pending() == 0 || self.team.abort.load(Ordering::Relaxed)
        });
        self.steal_seed.set(seed);
    }

    // ------------------------------------------------------------------
    // cancellation
    // ------------------------------------------------------------------

    /// Open a cancellable worksharing construct (loop or `sections`):
    /// advance and return this thread's cancellable-construct
    /// generation, and mark it the target of `cancel(For/Sections)`
    /// calls from the body. Paired with
    /// [`exit_cancellable_ws`](Self::exit_cancellable_ws).
    pub(crate) fn enter_cancellable_ws(&self) -> u64 {
        let g = self.cancel_gen.get();
        self.cancel_gen.set(g + 1);
        self.active_ws.set(g);
        g
    }

    /// Close the innermost cancellable worksharing construct.
    pub(crate) fn exit_cancellable_ws(&self) {
        self.active_ws.set(u64::MAX);
    }

    /// Has the worksharing construct with cancellable generation `gen`
    /// been cancelled — directly (`cancel for`/`cancel sections`) or
    /// via cancellation of the whole region (`cancel parallel`)? The
    /// dispatch loops consult this before claiming each chunk.
    pub(crate) fn ws_cancelled(&self, gen: u64) -> bool {
        self.team.cancel_parallel.load(Ordering::Relaxed)
            || self.team.cancel_ws.load(Ordering::Relaxed) == gen + 1
    }

    /// `cancel` construct: request cancellation of the innermost
    /// enclosing region of `kind`. Returns `true` when cancellation is
    /// active for the encountering thread (it should then proceed to
    /// the end of the cancelled region — `romp`'s front ends emit an
    /// early `return` on `true`); returns `false` when `cancel-var`
    /// ([`OMP_CANCELLATION`](crate::env)) is off, making the whole
    /// construct a no-op per the spec.
    ///
    /// Cancellation is **cooperative and chunk-granular**: loop chunks
    /// already claimed run to completion, and sibling threads observe
    /// the request at their next cancellation point (chunk grab,
    /// barrier, or explicit `cancellation point`). Tasks that have not
    /// started when their taskgroup or region is cancelled are
    /// discarded without executing.
    ///
    /// # Panics
    ///
    /// With cancellation armed: `CancelKind::For`/`Sections` outside a
    /// worksharing construct, or `CancelKind::Taskgroup` outside any
    /// taskgroup region (both are constraint violations in OpenMP).
    pub fn cancel(&self, kind: CancelKind) -> bool {
        // Taskgroup requests resolve everything from TLS (group stack +
        // region snapshot) and share one implementation with the
        // context-free entry the task-body front ends use.
        if kind == CancelKind::Taskgroup {
            return cancel_taskgroup();
        }
        if !self.team.cancellable() {
            return false;
        }
        match kind {
            CancelKind::Parallel => {
                if !self.team.cancel_parallel.swap(true, Ordering::Release) {
                    self.team.tasks.cancel_all.store(true, Ordering::Release);
                    crate::stats::bump(&crate::stats::stats().cancels_activated);
                }
            }
            CancelKind::For | CancelKind::Sections => {
                let g = self.active_ws.get();
                assert!(
                    g != u64::MAX,
                    "cancel({kind:?}) must be closely nested inside a worksharing construct"
                );
                // Monotone update: the single cell holds one request,
                // and with `nowait` two constructs can be in flight at
                // once (OpenMP forbids cancelling a nowait construct;
                // romp tolerates it) — never let an older construct's
                // request clobber a newer one already recorded, or the
                // newer construct would silently run to completion.
                if self.team.cancel_ws.fetch_max(g + 1, Ordering::AcqRel) < g + 1 {
                    crate::stats::bump(&crate::stats::stats().cancels_activated);
                }
            }
            CancelKind::Taskgroup => unreachable!("delegated above"),
        }
        true
    }

    /// Shared entry of the `single` family: join the construct's slot
    /// and race for the claim. `None` means the region was cancelled
    /// and the construct is skipped; otherwise the caller got
    /// `(slot, winner)` and must `slot.leave()` when done.
    fn single_enter(&self) -> Option<(&crate::team::WsSlot, bool)> {
        let gen = self.next_gen();
        let slot = self.team.slot(gen);
        let ok = slot.enter(
            gen,
            self.team.size(),
            &self.team.abort,
            &self.team.cancel_parallel,
            |s| {
                s.claimed.store(false, Ordering::Relaxed);
            },
        );
        if !ok {
            if self.team.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            return None;
        }
        let winner = slot
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        Some((slot, winner))
    }

    /// `cancellation point` construct: has cancellation of the
    /// innermost enclosing region of `kind` been activated? Always
    /// `false` when `cancel-var` is off. On `true` the calling code
    /// should proceed to the end of the cancelled region.
    pub fn cancellation_point(&self, kind: CancelKind) -> bool {
        if kind == CancelKind::Taskgroup {
            return cancellation_point_taskgroup();
        }
        // Chaos: turn this check into a spurious (self-gating) cancel
        // request — a legal schedule, since any sibling could have
        // issued the same `cancel` a moment before we checked.
        if matches!(
            crate::chaos::chaos_point!(crate::chaos::Site::CancelCheck),
            Some(crate::chaos::Injected::Cancel)
        ) {
            self.cancel(kind);
        }
        if !self.team.cancellable() {
            return false;
        }
        match kind {
            CancelKind::Parallel => self.team.cancel_parallel.load(Ordering::Acquire),
            CancelKind::For | CancelKind::Sections => {
                let g = self.active_ws.get();
                assert!(
                    g != u64::MAX,
                    "cancellation_point({kind:?}) must be closely nested inside a \
                     worksharing construct"
                );
                self.team.cancel_ws.load(Ordering::Acquire) == g + 1
            }
            CancelKind::Taskgroup => unreachable!("delegated above"),
        }
    }

    // ------------------------------------------------------------------
    // single / master / sections
    // ------------------------------------------------------------------

    /// `single` construct: exactly one team thread (the first to arrive)
    /// runs `f`; the others skip it. Implies a barrier on exit unless
    /// `nowait`. Returns `Some(result)` on the executing thread.
    pub fn single<R>(&self, nowait: bool, f: impl FnOnce() -> R) -> Option<R> {
        // `None` from the shared entry = cancelled region: skip.
        let (slot, winner) = self.single_enter()?;
        let out = if winner { Some(f()) } else { None };
        slot.leave();
        if !nowait {
            self.barrier();
        }
        out
    }

    /// `single copyprivate(...)`: one thread computes a value, every
    /// thread returns a copy of it. Always synchronizes (copyprivate
    /// forbids `nowait`).
    ///
    /// **Cancellation**: a thread that arrives after `cancel parallel`
    /// was activated skips the construct and computes `f` locally (the
    /// cancelled region's result is unspecified, but a value must still
    /// be returned and the construct must not panic). If cancellation
    /// lands *mid-construct*, the claim winner — it exists for every
    /// thread that entered and lost the claim race — still produces and
    /// publishes the value, and losers wait for it directly since the
    /// barrier no longer synchronizes; the producer then leaves the
    /// broadcast cell in place (team recycle/teardown clears it) so a
    /// racing reader can never miss it.
    pub fn single_copy<T: Clone + Send + 'static>(&self, f: impl FnOnce() -> T) -> T {
        let Some((slot, winner)) = self.single_enter() else {
            // Cancelled region: skip the construct, compute locally.
            return f();
        };
        let produced = if winner {
            let v = f();
            *self.team.copy_cell.lock() = Some(Box::new(v.clone()));
            Some(v)
        } else {
            None
        };
        slot.leave();
        self.barrier();
        let out = match produced {
            Some(v) => v,
            None => {
                let mut spins = 0u32;
                loop {
                    let got = self
                        .team
                        .copy_cell
                        .lock()
                        .as_ref()
                        .and_then(|b| b.downcast_ref::<T>())
                        .cloned();
                    if let Some(v) = got {
                        break v;
                    }
                    // Only reachable when cancellation degenerated the
                    // barrier: the winner (whose claim this thread
                    // lost) is still computing — wait for the publish
                    // itself, yielding so a descheduled winner gets the
                    // core on an oversubscribed host.
                    self.panic_if_aborted();
                    spins += 1;
                    if spins > 10_000 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        };
        // Second barrier so the producer can clear the cell only after
        // everyone has read it. In a cancelled region the barrier no
        // longer orders reads against the clear, so the cell is left
        // for recycle/teardown instead.
        self.barrier();
        if winner && !self.team.cancel_parallel.load(Ordering::Relaxed) {
            *self.team.copy_cell.lock() = None;
        }
        out
    }

    /// `master` construct: thread 0 runs `f`, no implied barrier.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.is_master() {
            Some(f())
        } else {
            None
        }
    }

    /// `sections` construct: `count` independent blocks distributed over
    /// the team, each executed exactly once. `body(i)` is invoked for the
    /// section indices this thread claims. Implies a barrier unless
    /// `nowait`.
    pub fn sections(&self, count: usize, nowait: bool, mut body: impl FnMut(usize)) {
        let cgen = self.enter_cancellable_ws();
        let gen = self.next_gen();
        let slot = self.team.slot(gen);
        let ok = slot.enter(
            gen,
            self.team.size(),
            &self.team.abort,
            &self.team.cancel_parallel,
            |s| {
                s.next.store(0, Ordering::Relaxed);
                s.end.store(count as u64, Ordering::Relaxed);
            },
        );
        if !ok {
            self.exit_cancellable_ws();
            if self.team.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SiblingPanic);
            }
            return; // cancelled region: skip the construct
        }
        let watch = self.team.cancellable();
        loop {
            // `cancel sections` (or `cancel parallel`): stop claiming.
            if watch && self.ws_cancelled(cgen) {
                break;
            }
            let i = slot.next.fetch_add(1, Ordering::AcqRel);
            if i >= count as u64 {
                break;
            }
            crate::stats::bump(&crate::stats::stats().dispatched_chunks);
            body(i as usize);
        }
        slot.leave();
        self.exit_cancellable_ws();
        if !nowait {
            self.barrier();
        }
    }

    // ------------------------------------------------------------------
    // tasking
    // ------------------------------------------------------------------

    /// `task` construct: defer `f` for execution by any team thread.
    /// The closure may borrow anything outliving the region (`'scope`).
    pub fn task<F: FnOnce() + Send + 'scope>(&self, f: F) {
        self.task_spec(TaskSpec::new(), f);
    }

    /// `task if(cond)`: deferred when `cond`, undeferred (run immediately
    /// on this thread) otherwise.
    pub fn task_if<F: FnOnce() + Send + 'scope>(&self, cond: bool, f: F) {
        self.task_spec(TaskSpec::new().if_clause(cond), f);
    }

    /// `task depend(…)`: defer `f`, ordered against sibling tasks per
    /// the dependence record (see [`TaskDeps`]).
    pub fn task_depend<F: FnOnce() + Send + 'scope>(&self, deps: TaskDeps, f: F) {
        self.task_spec(
            TaskSpec {
                deps,
                ..TaskSpec::default()
            },
            f,
        );
    }

    /// `task` with the full clause record: `depend(in/out/inout)`,
    /// `if`, `final`. Deferred tasks go through the team's
    /// dependence-graph scheduler; undeferred tasks (`if(false)`,
    /// `final`, or created inside a final task) run on the encountering
    /// thread — after helping with other tasks until their
    /// dependences are satisfied — so they still take their place in
    /// the dependence graph.
    pub fn task_spec<F: FnOnce() + Send + 'scope>(&self, spec: TaskSpec, f: F) {
        let hooks = TaskHooks {
            parent_children: current_children(self.implicit_children()),
            groups: current_groups(),
        };
        let make_final = spec.final_clause.unwrap_or(false) || in_final();
        let deferred = spec.if_clause.unwrap_or(true) && !make_final;
        let boxed: Box<dyn FnOnce() + Send + 'scope> = if make_final {
            Box::new(move || {
                let _final = FinalGuard::enter();
                f();
            })
        } else {
            Box::new(f)
        };
        // SAFETY: the region-end implicit barrier drains every deferred
        // task before `fork` returns, and `'scope` data outlives `fork`.
        let raw = unsafe { make_raw_task(boxed, hooks) };
        if deferred {
            unsafe { self.team.tasks.push(self.thread_num, raw, spec.deps) };
        } else {
            let mut seed = self.steal_seed.get();
            unsafe {
                self.team
                    .tasks
                    .run_undeferred(self.thread_num, &mut seed, raw, spec.deps)
            };
            self.steal_seed.set(seed);
        }
    }

    /// `taskwait`: block until all children of the current task have
    /// completed, helping to execute queued tasks meanwhile.
    pub fn taskwait(&self) {
        let children = current_children(self.implicit_children());
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.panic_if_aborted();
            children.load(Ordering::Acquire) == 0
        });
        self.steal_seed.set(seed);
    }

    /// `taskloop` construct: the encountering thread carves `range` into
    /// tasks of `grainsize` iterations, executed by the whole team, and
    /// waits for all of them (the implicit taskgroup of `taskloop`).
    /// Pass `grainsize = 0` for the implementation default.
    pub fn taskloop<F>(&self, range: std::ops::Range<usize>, grainsize: usize, body: F)
    where
        F: Fn(usize) + Send + Sync + 'scope,
    {
        self.taskloop_spec(range, TaskloopSpec::new().grainsize(grainsize), body);
    }

    /// `taskloop` with the full clause record: `grainsize`, `num_tasks`
    /// (which wins when both are set), and `nogroup` (skip the implicit
    /// taskgroup — pair with [`taskwait`](Self::taskwait) or a barrier).
    pub fn taskloop_spec<F>(&self, range: std::ops::Range<usize>, spec: TaskloopSpec, body: F)
    where
        F: Fn(usize) + Send + Sync + 'scope,
    {
        let trip = range.end.saturating_sub(range.start);
        if trip == 0 {
            return;
        }
        let grain = if spec.num_tasks > 0 {
            trip.div_ceil(spec.num_tasks).max(1)
        } else if spec.grainsize > 0 {
            spec.grainsize
        } else {
            (trip / (8 * self.num_threads())).max(1)
        };
        let body = std::sync::Arc::new(body);
        let generate = || {
            let mut lo = range.start;
            while lo < range.end {
                let hi = (lo + grain).min(range.end);
                let f = body.clone();
                self.task(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
                lo = hi;
            }
        };
        if spec.nogroup {
            generate();
        } else {
            self.taskgroup(generate);
        }
    }

    /// `taskgroup`: run `f`, then wait for all tasks created inside it
    /// (transitively, including by stolen children — the executor of a
    /// member task adopts its group set, so grandchildren join too) to
    /// finish. If the group is cancelled (`cancel taskgroup`), member
    /// tasks that have not started are discarded instead of executed,
    /// and the wait completes as soon as the running ones retire.
    pub fn taskgroup<R>(&self, f: impl FnOnce() -> R) -> R {
        let group = Arc::new(TaskGroup::default());
        GROUP_STACK.with(|g| g.borrow_mut().push(group.clone()));
        struct PopGroup;
        impl Drop for PopGroup {
            fn drop(&mut self) {
                GROUP_STACK.with(|g| {
                    g.borrow_mut().pop();
                });
            }
        }
        let out = {
            let _pop = PopGroup;
            f()
        };
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.panic_if_aborted();
            group.count.load(Ordering::Acquire) == 0
        });
        self.steal_seed.set(seed);
        out
    }

    // ------------------------------------------------------------------
    // reductions
    // ------------------------------------------------------------------

    /// Contribute this thread's private partial to a shared reduction
    /// variable and return the fully combined value (after the implied
    /// barrier), i.e. the end-of-construct semantics of `reduction`.
    pub fn reduce<T: Clone, Op: crate::reduction::ReduceOp<T>>(
        &self,
        var: &crate::reduction::RedVar<T, Op>,
        partial: T,
    ) -> T {
        var.contribute(partial);
        self.barrier();
        let v = var.get();
        // Keep threads from racing ahead and re-contributing to a reused
        // variable before everyone has read it.
        self.barrier();
        v
    }

    /// Team-wide reduction without a pre-created shared variable: every
    /// thread passes its private partial (and the same `op`), every
    /// thread receives the combined value. This is what the macro layer's
    /// `reduction` clause lowers to.
    ///
    /// All team threads must call this the same number of times in the
    /// same order (it is a synchronizing construct, like a barrier).
    ///
    /// **Cancellation**: the generation-eviction protocol below is
    /// enforced by the two barriers, which degenerate once `cancel
    /// parallel` is active — threads can then race across generations.
    /// A cancelled region's result is unspecified, so every cross-
    /// generation collision falls back to the thread's own `partial`
    /// (never a panic): a thread arriving after the cancel skips the
    /// construct outright, and mid-construct type/eviction races
    /// degrade to partial values.
    ///
    /// # Panics
    ///
    /// If threads disagree on `T` for the same reduction construct
    /// (outside of cancellation).
    pub fn reduce_value<T, Op>(&self, op: Op, partial: T) -> T
    where
        T: Clone + Send + 'static,
        Op: crate::reduction::ReduceOp<T>,
    {
        let watch = self.team.cancellable();
        let cancelled = || watch && self.team.cancel_parallel.load(Ordering::Relaxed);
        if cancelled() {
            return partial;
        }
        // The cancellation fallback below is only reachable when the
        // feature is armed; the disarmed hot path must not pay a clone.
        let fallback = watch.then(|| partial.clone());
        let gen = self.red_gen.get();
        self.red_gen.set(gen + 1);
        let cell = &self.team.reduce_cells[(gen % 2) as usize];
        {
            let mut c = cell.lock();
            if c.gen != gen {
                // First arrival of this generation: evict stale state
                // from two constructs ago (everyone has long read it —
                // the barriers below guarantee that).
                c.gen = gen;
                c.value = None;
            }
            match c.value.as_mut() {
                None => c.value = Some(Box::new(partial)),
                Some(acc) => match acc.downcast_mut::<T>() {
                    Some(acc) => *acc = op.combine(acc.clone(), partial),
                    // A cancelled region's degenerate barriers let
                    // another generation's type occupy the cell; drop
                    // the contribution (result is unspecified anyway).
                    None if cancelled() => {}
                    None => panic!("reduce_value: team threads disagree on the reduction type"),
                },
            }
        }
        // All contributions in…
        self.barrier();
        let out = cell
            .lock()
            .value
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .cloned();
        let out = match out {
            Some(v) => v,
            // Unreachable expect, by construction: `cancelled()` can
            // only return true when `watch` is true, and `fallback` is
            // `Some` exactly when `watch` is true (set above, before
            // any early return). Kept as an expect (not a warn) because
            // reaching it would mean the *closure environment* itself
            // was torn, which no graceful path can repair; the chaos
            // soak drives cancel-at-reduction schedules through here.
            None if cancelled() => fallback.expect("cancellation implies cancel-var armed"),
            None => panic!("reduce_value: combined value present after barrier"),
        };
        // …and all reads out before anyone can reach generation gen+2
        // (which reuses this cell).
        self.barrier();
        out
    }
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("thread_num", &self.thread_num)
            .field("num_threads", &self.team.size())
            .field("level", &self.team.level)
            .finish()
    }
}
