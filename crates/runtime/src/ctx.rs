//! Per-thread context inside a parallel region.
//!
//! Every team thread's copy of the outlined region closure receives a
//! [`ThreadCtx`]: the handle through which all constructs — barriers,
//! worksharing loops, `single`, `sections`, tasks — are reached. It is
//! the analogue of the `(global_tid, bound_tid)` pair libomp passes to
//! outlined functions, fattened into an actual capability object.
//!
//! The `'scope` lifetime parameter plays the same role as
//! `std::thread::Scope`'s: closures handed to [`ThreadCtx::task`] may
//! borrow anything that outlives the region, because the region's
//! implicit end barrier drains all tasks before `fork` returns.

use crate::barrier::BarrierLocal;
use crate::lock::os_thread_id;
use crate::task::{
    current_children, current_groups, in_final, make_raw_task, FinalGuard, TaskDeps, TaskHooks,
    GROUP_STACK,
};
use crate::team::Team;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where am I in the region nest? One entry per enclosing parallel
/// region on this OS thread.
pub(crate) struct RegionInfo {
    pub team: Arc<Team>,
    pub thread_num: usize,
}

thread_local! {
    pub(crate) static REGION_STACK: RefCell<Vec<RegionInfo>> = const { RefCell::new(Vec::new()) };
}

/// `(level, active_level)` seen by a `parallel` construct starting on
/// the current thread.
pub(crate) fn forking_position() -> (usize, usize) {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            None => (0, 0),
            Some(top) => (top.team.level, top.team.active_level),
        }
    })
}

/// Ancestor chain for a team forked from the current position:
/// `(thread_num, team_size)` from the initial implicit task down to
/// here. Separate from [`forking_position`] so the hot fast path never
/// pays the clone — only cold team construction needs the chain.
pub(crate) fn forking_ancestors() -> Vec<(usize, usize)> {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            None => vec![(0, 1)],
            Some(top) => {
                let mut chain = top.team.ancestors.clone();
                chain.push((top.thread_num, top.team.size()));
                chain
            }
        }
    })
}

/// Read a field of the innermost region, with a default for the
/// sequential part.
pub(crate) fn with_current<R>(f: impl FnOnce(&RegionInfo) -> R, default: impl FnOnce() -> R) -> R {
    REGION_STACK.with(|s| {
        let stack = s.borrow();
        match stack.last() {
            Some(top) => f(top),
            None => default(),
        }
    })
}

/// Marker payload used to unwind sibling threads when one team member
/// panics; the master rethrows the original payload, not this one.
pub struct SiblingPanic;

/// Clause record of one `task` construct: `depend(in/out/inout: …)`,
/// `if(expr)` and `final(expr)`. The directive front ends accumulate
/// clauses into this and hand it to [`ThreadCtx::task_spec`].
///
/// ```
/// use romp_runtime::{fork, ForkSpec, TaskSpec};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let stages = AtomicUsize::new(0);
/// let token = 0u8; // any storage location works as a dependence token
/// fork(ForkSpec::with_num_threads(2), |ctx| {
///     if ctx.is_master() {
///         // Writer before reader, whichever thread runs them.
///         ctx.task_spec(TaskSpec::new().output(&token), || {
///             stages.fetch_add(1, Ordering::SeqCst);
///         });
///         ctx.task_spec(TaskSpec::new().input(&token), || {
///             assert_eq!(stages.load(Ordering::SeqCst), 1);
///             stages.fetch_add(1, Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(stages.load(Ordering::SeqCst), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSpec {
    /// The accumulated `depend` clauses.
    pub deps: TaskDeps,
    /// `if(expr)`: `Some(false)` makes the task undeferred (executed
    /// immediately by the encountering thread, after its dependences
    /// are satisfied).
    pub if_clause: Option<bool>,
    /// `final(expr)`: `Some(true)` makes the task final — it executes
    /// undeferred, and every task created during its execution is an
    /// included task (undeferred and itself final). The cut-off idiom:
    /// `final(depth >= CUTOFF)` stops paying deferral overhead below
    /// the cut-off.
    ///
    /// **Divergence from OpenMP**: the spec keeps the final task itself
    /// deferrable and only *descendants* included. In romp a task body
    /// cannot reach the region context (`&ThreadCtx` is not `Send`), so
    /// descendants are spawned by code running on the encountering
    /// thread — which is exactly what executing the final task inline
    /// achieves. Code that needs the spawn to stay asynchronous at the
    /// cut-off level should guard with `if` instead of `final`.
    pub final_clause: Option<bool>,
}

impl TaskSpec {
    /// Empty spec: a plain deferred task.
    pub fn new() -> Self {
        TaskSpec::default()
    }

    /// Add a `depend(in: x)` dependence.
    pub fn input<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.input(x);
        self
    }

    /// Add a `depend(out: x)` dependence.
    pub fn output<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.output(x);
        self
    }

    /// Add a `depend(inout: x)` dependence.
    pub fn inout<T: ?Sized>(mut self, x: &T) -> Self {
        self.deps = self.deps.inout(x);
        self
    }

    /// The `if` clause.
    pub fn if_clause(mut self, cond: bool) -> Self {
        self.if_clause = Some(cond);
        self
    }

    /// The `final` clause.
    pub fn final_clause(mut self, cond: bool) -> Self {
        self.final_clause = Some(cond);
        self
    }
}

/// Clause record of one `taskloop` construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskloopSpec {
    /// `grainsize(g)`: iterations per task; 0 = implementation default.
    pub grainsize: usize,
    /// `num_tasks(n)`: create (at most) `n` tasks; 0 = unset. Wins over
    /// `grainsize` when both are given.
    pub num_tasks: usize,
    /// `nogroup`: skip the implicit taskgroup (the encountering thread
    /// does not wait for the generated tasks).
    pub nogroup: bool,
}

impl TaskloopSpec {
    /// Default spec: implementation-chosen grainsize, implicit taskgroup.
    pub fn new() -> Self {
        TaskloopSpec::default()
    }

    /// The `grainsize` clause.
    pub fn grainsize(mut self, g: usize) -> Self {
        self.grainsize = g;
        self
    }

    /// The `num_tasks` clause.
    pub fn num_tasks(mut self, n: usize) -> Self {
        self.num_tasks = n;
        self
    }

    /// The `nogroup` clause.
    pub fn nogroup(mut self) -> Self {
        self.nogroup = true;
        self
    }
}

/// The per-thread handle to a parallel region.
///
/// Constructed by the runtime (one per team thread per region) and passed
/// to the outlined region closure. All methods take `&self`; the mutable
/// bookkeeping (construct generation, barrier sense, steal seed) is in
/// `Cell`s so user code can call constructs from nested helper closures.
pub struct ThreadCtx<'scope> {
    team: Arc<Team>,
    thread_num: usize,
    ws_gen: Cell<u64>,
    barrier_local: RefCell<BarrierLocal>,
    /// Children of this thread's *implicit* task (targets of `taskwait`
    /// outside any explicit task). Lazily allocated: regions that never
    /// spawn tasks — the overwhelming fast path — skip the heap
    /// round-trip per thread per region.
    implicit_children: std::sync::OnceLock<Arc<AtomicUsize>>,
    steal_seed: Cell<u64>,
    /// Per-thread reduction-construct counter (see
    /// [`reduce_value`](Self::reduce_value)).
    red_gen: Cell<u64>,
    /// Invariant over `'scope` (see module docs).
    _scope: PhantomData<Cell<&'scope ()>>,
}

impl<'scope> ThreadCtx<'scope> {
    pub(crate) fn new(team: Arc<Team>, thread_num: usize) -> Self {
        ThreadCtx {
            team,
            thread_num,
            ws_gen: Cell::new(0),
            barrier_local: RefCell::new(BarrierLocal::default()),
            implicit_children: std::sync::OnceLock::new(),
            steal_seed: Cell::new(os_thread_id() | 1),
            red_gen: Cell::new(0),
            _scope: PhantomData,
        }
    }

    /// This thread's number within the team (`omp_get_thread_num`);
    /// 0 is the master.
    #[inline]
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    /// Team size (`omp_get_num_threads`).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.team.size()
    }

    /// Is this the master (thread 0)?
    #[inline]
    pub fn is_master(&self) -> bool {
        self.thread_num == 0
    }

    /// Nesting level of the enclosing region (`omp_get_level`).
    #[inline]
    pub fn level(&self) -> usize {
        self.team.level
    }

    /// The region's effective thread-affinity request
    /// (`omp_get_proc_bind`): the fork's `proc_bind` clause if one was
    /// given, else the `bind-var` ICV. Recorded and reported; actual
    /// core pinning is advisory in romp.
    pub fn proc_bind(&self) -> crate::icv::ProcBind {
        self.team.proc_bind()
    }

    pub(crate) fn team(&self) -> &Arc<Team> {
        &self.team
    }

    /// The implicit task's children counter (allocated on first use).
    fn implicit_children(&self) -> &Arc<AtomicUsize> {
        self.implicit_children
            .get_or_init(|| Arc::new(AtomicUsize::new(0)))
    }

    /// Next worksharing-construct generation for this thread.
    pub(crate) fn next_gen(&self) -> u64 {
        let g = self.ws_gen.get();
        self.ws_gen.set(g + 1);
        g
    }

    fn panic_if_aborted(&self) {
        if self.team.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(SiblingPanic);
        }
    }

    /// Raw team barrier (no task draining). Panics with a sibling marker
    /// if the team aborted.
    pub(crate) fn team_barrier(&self) {
        let ok = self.team.barrier.wait(
            self.thread_num,
            &mut self.barrier_local.borrow_mut(),
            &self.team.abort,
        );
        if !ok {
            std::panic::panic_any(SiblingPanic);
        }
    }

    /// Explicit barrier (`#pragma omp barrier`): helps execute pending
    /// explicit tasks, then synchronizes the team. No thread proceeds
    /// until all threads have arrived *and* every deferred task has
    /// completed.
    pub fn barrier(&self) {
        loop {
            self.help_tasks_while_pending();
            self.team_barrier();
            // After the episode, task counts are stable: creations
            // happen-before the barrier, so all threads agree.
            if self.team.tasks.pending() == 0 {
                break;
            }
        }
    }

    /// The implicit barrier at the end of the region body; unlike
    /// [`barrier`](Self::barrier) it does not panic on abort (the region
    /// is ending anyway and the master rethrows the real payload).
    ///
    /// **Hot teams** skip the closing barrier episode entirely: each
    /// thread drains the task graph and leaves; the master's join on
    /// `Team::remaining` is the region-end rendezvous (no thread can
    /// observe the region as finished before every thread has signalled
    /// completion), and the next fork's doorbell ring is the release.
    /// That saves one full barrier episode — with its wake-everyone
    /// broadcast — per parallel region on the fast path.
    pub(crate) fn end_of_region_barrier(&self) {
        if self.team.hot {
            self.help_tasks_while_pending();
            return;
        }
        loop {
            self.help_tasks_while_pending();
            let ok = self.team.barrier.wait(
                self.thread_num,
                &mut self.barrier_local.borrow_mut(),
                &self.team.abort,
            );
            if !ok {
                return;
            }
            if self.team.tasks.pending() == 0 {
                return;
            }
        }
    }

    /// Help retire the team's task graph: execute (and steal) tasks
    /// while *any* task is live team-wide, not merely until our deques
    /// look empty. Waiting threads must not park in the barrier while a
    /// dependence graph is still producing work — a stalled task is
    /// released onto its *finisher's* deque, so a parked sibling would
    /// otherwise never pick it up and the graph would drain serially on
    /// one thread. (`work_until` backs off to a sleep when nothing is
    /// stealable, so waiting on one long task does not burn the core.)
    /// Bails out on team abort (the barrier wait reports it).
    fn help_tasks_while_pending(&self) {
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.team.tasks.pending() == 0 || self.team.abort.load(Ordering::Relaxed)
        });
        self.steal_seed.set(seed);
    }

    // ------------------------------------------------------------------
    // single / master / sections
    // ------------------------------------------------------------------

    /// `single` construct: exactly one team thread (the first to arrive)
    /// runs `f`; the others skip it. Implies a barrier on exit unless
    /// `nowait`. Returns `Some(result)` on the executing thread.
    pub fn single<R>(&self, nowait: bool, f: impl FnOnce() -> R) -> Option<R> {
        let gen = self.next_gen();
        let slot = self.team.slot(gen);
        let ok = slot.enter(gen, self.team.size(), &self.team.abort, |s| {
            s.claimed.store(false, Ordering::Relaxed);
        });
        if !ok {
            std::panic::panic_any(SiblingPanic);
        }
        let winner = slot
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        let out = if winner { Some(f()) } else { None };
        slot.leave();
        if !nowait {
            self.barrier();
        }
        out
    }

    /// `single copyprivate(...)`: one thread computes a value, every
    /// thread returns a copy of it. Always synchronizes (copyprivate
    /// forbids `nowait`).
    pub fn single_copy<T: Clone + Send + 'static>(&self, f: impl FnOnce() -> T) -> T {
        let produced = self.single(true, f);
        if let Some(v) = &produced {
            *self.team.copy_cell.lock() = Some(Box::new(v.clone()));
        }
        self.barrier();
        let was_producer = produced.is_some();
        let out = match produced {
            Some(v) => v,
            None => self
                .team
                .copy_cell
                .lock()
                .as_ref()
                .and_then(|b| b.downcast_ref::<T>())
                .cloned()
                .expect("copyprivate cell holds the produced value"),
        };
        // Second barrier so the producer can clear the cell only after
        // everyone has read it.
        self.barrier();
        if was_producer {
            *self.team.copy_cell.lock() = None;
        }
        out
    }

    /// `master` construct: thread 0 runs `f`, no implied barrier.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.is_master() {
            Some(f())
        } else {
            None
        }
    }

    /// `sections` construct: `count` independent blocks distributed over
    /// the team, each executed exactly once. `body(i)` is invoked for the
    /// section indices this thread claims. Implies a barrier unless
    /// `nowait`.
    pub fn sections(&self, count: usize, nowait: bool, mut body: impl FnMut(usize)) {
        let gen = self.next_gen();
        let slot = self.team.slot(gen);
        let ok = slot.enter(gen, self.team.size(), &self.team.abort, |s| {
            s.next.store(0, Ordering::Relaxed);
            s.end.store(count as u64, Ordering::Relaxed);
        });
        if !ok {
            std::panic::panic_any(SiblingPanic);
        }
        loop {
            let i = slot.next.fetch_add(1, Ordering::AcqRel);
            if i >= count as u64 {
                break;
            }
            crate::stats::bump(&crate::stats::stats().dispatched_chunks);
            body(i as usize);
        }
        slot.leave();
        if !nowait {
            self.barrier();
        }
    }

    // ------------------------------------------------------------------
    // tasking
    // ------------------------------------------------------------------

    /// `task` construct: defer `f` for execution by any team thread.
    /// The closure may borrow anything outliving the region (`'scope`).
    pub fn task<F: FnOnce() + Send + 'scope>(&self, f: F) {
        self.task_spec(TaskSpec::new(), f);
    }

    /// `task if(cond)`: deferred when `cond`, undeferred (run immediately
    /// on this thread) otherwise.
    pub fn task_if<F: FnOnce() + Send + 'scope>(&self, cond: bool, f: F) {
        self.task_spec(TaskSpec::new().if_clause(cond), f);
    }

    /// `task depend(…)`: defer `f`, ordered against sibling tasks per
    /// the dependence record (see [`TaskDeps`]).
    pub fn task_depend<F: FnOnce() + Send + 'scope>(&self, deps: TaskDeps, f: F) {
        self.task_spec(
            TaskSpec {
                deps,
                ..TaskSpec::default()
            },
            f,
        );
    }

    /// `task` with the full clause record: `depend(in/out/inout)`,
    /// `if`, `final`. Deferred tasks go through the team's
    /// dependence-graph scheduler; undeferred tasks (`if(false)`,
    /// `final`, or created inside a final task) run on the encountering
    /// thread — after helping with other tasks until their
    /// dependences are satisfied — so they still take their place in
    /// the dependence graph.
    pub fn task_spec<F: FnOnce() + Send + 'scope>(&self, spec: TaskSpec, f: F) {
        let hooks = TaskHooks {
            parent_children: current_children(self.implicit_children()),
            groups: current_groups(),
        };
        let make_final = spec.final_clause.unwrap_or(false) || in_final();
        let deferred = spec.if_clause.unwrap_or(true) && !make_final;
        let boxed: Box<dyn FnOnce() + Send + 'scope> = if make_final {
            Box::new(move || {
                let _final = FinalGuard::enter();
                f();
            })
        } else {
            Box::new(f)
        };
        // SAFETY: the region-end implicit barrier drains every deferred
        // task before `fork` returns, and `'scope` data outlives `fork`.
        let raw = unsafe { make_raw_task(boxed, hooks) };
        if deferred {
            unsafe { self.team.tasks.push(self.thread_num, raw, spec.deps) };
        } else {
            let mut seed = self.steal_seed.get();
            unsafe {
                self.team
                    .tasks
                    .run_undeferred(self.thread_num, &mut seed, raw, spec.deps)
            };
            self.steal_seed.set(seed);
        }
    }

    /// `taskwait`: block until all children of the current task have
    /// completed, helping to execute queued tasks meanwhile.
    pub fn taskwait(&self) {
        let children = current_children(self.implicit_children());
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.panic_if_aborted();
            children.load(Ordering::Acquire) == 0
        });
        self.steal_seed.set(seed);
    }

    /// `taskloop` construct: the encountering thread carves `range` into
    /// tasks of `grainsize` iterations, executed by the whole team, and
    /// waits for all of them (the implicit taskgroup of `taskloop`).
    /// Pass `grainsize = 0` for the implementation default.
    pub fn taskloop<F>(&self, range: std::ops::Range<usize>, grainsize: usize, body: F)
    where
        F: Fn(usize) + Send + Sync + 'scope,
    {
        self.taskloop_spec(range, TaskloopSpec::new().grainsize(grainsize), body);
    }

    /// `taskloop` with the full clause record: `grainsize`, `num_tasks`
    /// (which wins when both are set), and `nogroup` (skip the implicit
    /// taskgroup — pair with [`taskwait`](Self::taskwait) or a barrier).
    pub fn taskloop_spec<F>(&self, range: std::ops::Range<usize>, spec: TaskloopSpec, body: F)
    where
        F: Fn(usize) + Send + Sync + 'scope,
    {
        let trip = range.end.saturating_sub(range.start);
        if trip == 0 {
            return;
        }
        let grain = if spec.num_tasks > 0 {
            trip.div_ceil(spec.num_tasks).max(1)
        } else if spec.grainsize > 0 {
            spec.grainsize
        } else {
            (trip / (8 * self.num_threads())).max(1)
        };
        let body = std::sync::Arc::new(body);
        let generate = || {
            let mut lo = range.start;
            while lo < range.end {
                let hi = (lo + grain).min(range.end);
                let f = body.clone();
                self.task(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
                lo = hi;
            }
        };
        if spec.nogroup {
            generate();
        } else {
            self.taskgroup(generate);
        }
    }

    /// `taskgroup`: run `f`, then wait for all tasks created inside it
    /// (transitively, including by stolen children) to finish.
    pub fn taskgroup<R>(&self, f: impl FnOnce() -> R) -> R {
        let counter = Arc::new(AtomicUsize::new(0));
        GROUP_STACK.with(|g| g.borrow_mut().push(counter.clone()));
        struct PopGroup;
        impl Drop for PopGroup {
            fn drop(&mut self) {
                GROUP_STACK.with(|g| {
                    g.borrow_mut().pop();
                });
            }
        }
        let out = {
            let _pop = PopGroup;
            f()
        };
        let mut seed = self.steal_seed.get();
        self.team.tasks.work_until(self.thread_num, &mut seed, || {
            self.panic_if_aborted();
            counter.load(Ordering::Acquire) == 0
        });
        self.steal_seed.set(seed);
        out
    }

    // ------------------------------------------------------------------
    // reductions
    // ------------------------------------------------------------------

    /// Contribute this thread's private partial to a shared reduction
    /// variable and return the fully combined value (after the implied
    /// barrier), i.e. the end-of-construct semantics of `reduction`.
    pub fn reduce<T: Clone, Op: crate::reduction::ReduceOp<T>>(
        &self,
        var: &crate::reduction::RedVar<T, Op>,
        partial: T,
    ) -> T {
        var.contribute(partial);
        self.barrier();
        let v = var.get();
        // Keep threads from racing ahead and re-contributing to a reused
        // variable before everyone has read it.
        self.barrier();
        v
    }

    /// Team-wide reduction without a pre-created shared variable: every
    /// thread passes its private partial (and the same `op`), every
    /// thread receives the combined value. This is what the macro layer's
    /// `reduction` clause lowers to.
    ///
    /// All team threads must call this the same number of times in the
    /// same order (it is a synchronizing construct, like a barrier).
    ///
    /// # Panics
    ///
    /// If threads disagree on `T` for the same reduction construct.
    pub fn reduce_value<T, Op>(&self, op: Op, partial: T) -> T
    where
        T: Clone + Send + 'static,
        Op: crate::reduction::ReduceOp<T>,
    {
        let gen = self.red_gen.get();
        self.red_gen.set(gen + 1);
        let cell = &self.team.reduce_cells[(gen % 2) as usize];
        {
            let mut c = cell.lock();
            if c.gen != gen {
                // First arrival of this generation: evict stale state
                // from two constructs ago (everyone has long read it —
                // the barriers below guarantee that).
                c.gen = gen;
                c.value = None;
            }
            match c.value.as_mut() {
                None => c.value = Some(Box::new(partial)),
                Some(acc) => {
                    let acc = acc
                        .downcast_mut::<T>()
                        .expect("reduce_value: team threads disagree on the reduction type");
                    *acc = op.combine(acc.clone(), partial);
                }
            }
        }
        // All contributions in…
        self.barrier();
        let out = cell
            .lock()
            .value
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .cloned()
            .expect("reduce_value: combined value present after barrier");
        // …and all reads out before anyone can reach generation gen+2
        // (which reuses this cell).
        self.barrier();
        out
    }
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("thread_num", &self.thread_num)
            .field("num_threads", &self.team.size())
            .field("level", &self.team.level)
            .finish()
    }
}
