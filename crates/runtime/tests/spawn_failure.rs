//! Regression tests for worker-spawn failure on the fork path.
//!
//! `Pool::acquire` takes an atomic thread-limit reservation *before*
//! spawning each worker. Historically a failed
//! `std::thread::Builder::spawn` panicked the whole process through an
//! `expect` — with the reservation still held, so even a caught panic
//! would have permanently shrunk the effective thread limit. The fixed
//! path rolls the reservation back and degrades the fork to a **short
//! team**, which the spec explicitly permits (a team may be delivered
//! with fewer threads than requested).
//!
//! The failure injection (`pool::inject_spawn_failures`) is scoped to
//! the *arming thread*: spawns happen on the forking master's thread
//! inside `Pool::acquire`, so a counter armed here can never be
//! consumed by an unrelated test running concurrently on another
//! thread (that leak was a real bug — see
//! `injection_is_scoped_to_the_arming_thread`). The tests still
//! serialize on `INJECT_LOCK` because they mutate global ICVs
//! (`hot_teams`, `thread_limit`) and compare process-wide stats
//! deltas. Every fork runs on a freshly-spawned master thread so no
//! hot-team lease outlives a test on a harness thread.

use romp_runtime::stats::stats;
use romp_runtime::{fork, icv, pool, ForkSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static INJECT_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` on a dedicated master thread under the injection lock.
fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
    let _g = INJECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::Builder::new()
        .name("spawn-failure-test-master".into())
        .spawn(f)
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn spawn_failure_degrades_to_short_team_instead_of_panicking() {
    on_fresh_thread(|| {
        // Force the cold path so every fork goes through Pool::acquire.
        icv::with_global_mut(|i| i.hot_teams = false);
        // Warm nothing: inject enough failures to cover every spawn the
        // fork below could attempt. The fork must still complete — on
        // the pre-fix code the first failed spawn aborts the process.
        let before = stats().snapshot();
        pool::inject_spawn_failures(64);
        let ran = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(4), |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        // Reset this thread's unconsumed injections (idle workers from
        // earlier tests' pools may have satisfied part of the fork).
        pool::inject_spawn_failures(0);
        let d = before.delta(&stats().snapshot());
        let delivered = ran.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&delivered),
            "short team must still run the region: {delivered}"
        );
        // If any spawn was actually attempted, the failure counter must
        // have moved (the injection fires before the real spawn).
        if delivered < 4 {
            assert!(
                d.worker_spawn_failures >= 1,
                "a short delivery implies a recorded spawn failure: {d:?}"
            );
        }
        icv::with_global_mut(|i| i.hot_teams = true);
    });
}

#[test]
fn spawn_failure_rolls_back_the_thread_limit_reservation() {
    on_fresh_thread(|| {
        icv::with_global_mut(|i| i.hot_teams = false);
        // Tight limit: master + 3 workers. With the pool warm at 0-3
        // workers this forces real accounting traffic on every fork.
        let prev_limit = icv::with_global_mut(|i| std::mem::replace(&mut i.thread_limit, 4));

        // Phase 1: every spawn fails. Whatever the fork delivers, each
        // failed spawn must roll its reservation back: `pool_size()`
        // (the reservation counter) must not exceed the number of
        // workers that actually exist, i.e. it must not creep toward
        // the cap on repeated attempts.
        pool::inject_spawn_failures(1000);
        let fails_before = stats().snapshot().worker_spawn_failures;
        let size_before = pool::pool_size();
        for _ in 0..10 {
            fork(ForkSpec::with_num_threads(4), |_| {});
        }
        pool::inject_spawn_failures(0);
        let fails_after = stats().snapshot().worker_spawn_failures;
        assert_eq!(
            pool::pool_size(),
            size_before,
            "failed spawns must not leak thread-limit reservations"
        );

        // Phase 2: with injection off, the limit headroom rolled back
        // in phase 1 must be usable — a fork can now grow the pool to
        // the full cap and deliver a full team. A leaked reservation
        // would permanently cap delivery below 4.
        let geometry = std::sync::Arc::new(AtomicUsize::new(0));
        let g = geometry.clone();
        fork(ForkSpec::with_num_threads(4), move |ctx| {
            g.fetch_max(ctx.num_threads(), Ordering::SeqCst);
        });
        assert_eq!(
            geometry.load(Ordering::SeqCst),
            4,
            "post-failure forks must reach the full thread limit again \
             (injected failures recorded: {})",
            fails_after - fails_before
        );

        icv::with_global_mut(|i| {
            i.thread_limit = prev_limit;
            i.hot_teams = true;
        });
    });
}

#[test]
fn injection_is_scoped_to_the_arming_thread() {
    let _g = INJECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Thread A arms a huge failure budget and exits without forking.
    // With the old process-global counter those 1000 pending failures
    // would poison every later fork in the process; with the
    // thread-local counter they die with A.
    std::thread::Builder::new()
        .name("spawn-failure-armer".into())
        .spawn(|| pool::inject_spawn_failures(1000))
        .unwrap()
        .join()
        .unwrap();
    // Thread B, a different master, must be unaffected: a fork wide
    // enough to need fresh spawns records zero spawn failures and
    // delivers its full team.
    std::thread::Builder::new()
        .name("spawn-failure-bystander".into())
        .spawn(|| {
            icv::with_global_mut(|i| i.hot_teams = false);
            let before = stats().snapshot();
            let geometry = std::sync::Arc::new(AtomicUsize::new(0));
            let g = geometry.clone();
            fork(ForkSpec::with_num_threads(16), move |ctx| {
                g.fetch_max(ctx.num_threads(), Ordering::SeqCst);
            });
            let d = before.delta(&stats().snapshot());
            assert_eq!(
                d.worker_spawn_failures, 0,
                "another thread's armed injections must not fire here"
            );
            assert_eq!(
                geometry.load(Ordering::SeqCst),
                16,
                "the bystander's fork must deliver its full team"
            );
            icv::with_global_mut(|i| i.hot_teams = true);
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn spawn_failure_midway_keeps_the_workers_already_acquired() {
    on_fresh_thread(|| {
        icv::with_global_mut(|i| i.hot_teams = false);
        // Warm the pool with at least one idle worker, then make all
        // *new* spawns fail: the next bigger fork must deliver the
        // pooled workers it did get (size ≥ 2), not collapse to one.
        fork(ForkSpec::with_num_threads(2), |_| {});
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool::idle_workers() < 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool::inject_spawn_failures(1000);
        let geometry = std::sync::Arc::new(AtomicUsize::new(0));
        let g = geometry.clone();
        fork(ForkSpec::with_num_threads(8), move |ctx| {
            g.fetch_max(ctx.num_threads(), Ordering::SeqCst);
        });
        pool::inject_spawn_failures(0);
        let n = geometry.load(Ordering::SeqCst);
        assert!(
            n >= 2,
            "the workers acquired before the failed spawn must be kept: {n}"
        );
        icv::with_global_mut(|i| i.hot_teams = true);
    });
}
