//! Runtime stress: fork-join churn, barriers, nesting, tasking under
//! stealing, reductions, and lock fairness.
//!
//! The conformance matrix (`tests/conformance_schedules.rs` at the
//! workspace root) pins the worksharing contract; this suite pins the
//! synchronization constructs the paper assumes of libomp under
//! repetition and contention.

use romp_runtime::{
    fork, icv, BarrierKind, ForkSpec, MaxOp, NestLock, OmpLock, ProdOp, Schedule, SumOp,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Repeated fork-join: hundreds of regions of varying size through the
/// persistent pool, each doing real work, must neither lose updates nor
/// wedge (pool reuse, mailbox handoff, join signalling).
#[test]
fn repeated_fork_join_churn() {
    let counter = AtomicU64::new(0);
    let mut expected = 0u64;
    for round in 0..300u64 {
        let threads = 1 + (round % 5) as usize;
        let granted = AtomicUsize::new(0);
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            granted.store(ctx.num_threads(), Ordering::Relaxed);
            counter.fetch_add(1 + ctx.thread_num() as u64, Ordering::Relaxed);
        });
        // Every team thread adds 1 + its id: sum = n + n(n-1)/2.
        let n = granted.load(Ordering::Relaxed).max(1) as u64;
        expected += n + n * (n - 1) / 2;
    }
    assert_eq!(counter.load(Ordering::Relaxed), expected);
}

/// Back-to-back barriers under both algorithms: no thread may pass
/// barrier `k+1` before every thread passed `k` (tracked by a strictly
/// monotonic phase counter per thread).
#[test]
fn barrier_phase_lockstep_both_kinds() {
    for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
        icv::with_global_mut(|i| i.barrier_kind = kind);
        let threads = 4;
        let phases: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            for round in 0..200u64 {
                // Everyone must still be on `round` when we arrive.
                for p in &phases {
                    let seen = p.load(Ordering::Acquire);
                    assert!(
                        seen == round || seen == round + 1,
                        "{kind:?}: phase skew (saw {seen} in round {round})"
                    );
                }
                phases[ctx.thread_num()].store(round + 1, Ordering::Release);
                ctx.barrier();
                // After the barrier, nobody can still be behind.
                for p in &phases {
                    assert!(p.load(Ordering::Acquire) > round, "{kind:?}: lost thread");
                }
                ctx.barrier();
            }
        });
        icv::with_global_mut(|i| i.barrier_kind = BarrierKind::Central);
    }
}

/// Nested parallelism respects `max-active-levels`: at the default of
/// 1 the inner region is serialized to a 1-thread team; when CI pins
/// `OMP_MAX_ACTIVE_LEVELS=2` it may be genuinely parallel. Either way
/// the inner region runs, levels are reported correctly, and inner
/// worksharing covers its whole space exactly once per region.
#[test]
fn nested_fork_serializes_by_default() {
    let max_active = romp_runtime::icv::current().max_active_levels;
    let inner_total = AtomicU64::new(0);
    let outer_granted = AtomicUsize::new(0);
    fork(ForkSpec::with_num_threads(4), |ctx| {
        outer_granted.store(ctx.num_threads(), Ordering::Relaxed);
        assert_eq!(ctx.level(), 1);
        let outer_id = ctx.thread_num();
        fork(ForkSpec::with_num_threads(8), |inner| {
            if max_active <= 1 {
                assert_eq!(inner.num_threads(), 1, "inner region was not serialized");
            }
            assert_eq!(inner.level(), 2);
            assert_eq!(
                romp_runtime::omp_get_ancestor_thread_num(1),
                Some(outer_id),
                "ancestor bookkeeping lost across nested fork"
            );
            // A worksharing loop inside the serialized region still
            // covers its whole space.
            inner.ws_for(0..50, Schedule::dynamic_chunk(3), false, |_| {
                inner_total.fetch_add(1, Ordering::Relaxed);
            });
        });
    });
    let team = outer_granted.load(Ordering::Relaxed).max(1) as u64;
    assert_eq!(inner_total.load(Ordering::Relaxed), 50 * team);
}

/// Taskgroup under work stealing: every team thread floods the deques
/// with tasks spawning subtasks; `taskgroup` must not return while any
/// transitively-created task is live, even when other threads steal
/// and run them.
#[test]
fn taskgroup_waits_for_stolen_subtasks() {
    let threads = 4;
    for _ in 0..20 {
        let done = Arc::new(AtomicUsize::new(0));
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            let done = done.clone();
            ctx.taskgroup(|| {
                for _ in 0..25 {
                    let done = done.clone();
                    ctx.task(move || {
                        // Subtask created *inside* a group task: the
                        // group must wait for it transitively.
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            // The group is closed: every task this thread spawned (and
            // any it stole) is finished. Since all threads' groups close
            // before the region's end barrier, the total is exact after
            // the implicit join below.
        });
        assert_eq!(
            done.load(Ordering::Relaxed),
            25 * fork_team_size(threads),
            "taskgroup returned before its tasks finished"
        );
    }
}

/// Deep task trees: tasks recursively spawning tasks, drained by
/// `taskwait` at each level — a stealing-heavy workload shaped like
/// divide-and-conquer codes.
#[test]
fn recursive_task_tree_under_stealing() {
    fn spawn_tree(ctx: &romp_runtime::ThreadCtx<'_>, depth: usize, hits: &AtomicU64) {
        hits.fetch_add(1, Ordering::Relaxed);
        if depth == 0 {
            return;
        }
        for _ in 0..2 {
            ctx.task(move || {
                // Leaf work is accounted via the closure below; the
                // recursion happens in the spawning thread.
            });
        }
        ctx.taskwait();
        spawn_tree(ctx, depth - 1, hits);
    }

    let hits = AtomicU64::new(0);
    let threads = 4;
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        spawn_tree(ctx, 6, &hits);
    });
    assert_eq!(
        hits.load(Ordering::Relaxed),
        7 * fork_team_size(threads) as u64
    );
}

/// `taskloop` covers its range exactly once regardless of grainsize,
/// with the whole team stealing chunks.
#[test]
fn taskloop_partitions_exactly_under_stealing() {
    for grain in [0usize, 1, 7, 1000] {
        let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        fork(ForkSpec::with_num_threads(4), |ctx| {
            // Only one thread carves the loop into tasks; the team
            // executes them.
            if ctx.single(true, || ()).is_some() {
                ctx.taskloop(0..512, grain, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "taskloop(grain={grain}) lost or duplicated iterations"
        );
    }
}

/// Team-wide value reductions agree with the serial fold across
/// repeated constructs (double-buffered reduce cells must not leak
/// state between generations).
#[test]
fn repeated_reductions_are_exact() {
    let threads = 4;
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        let n = ctx.num_threads() as u64;
        for round in 1..100u64 {
            let sum = ctx.reduce_value(SumOp, ctx.thread_num() as u64 + round);
            assert_eq!(sum, n * round + n * (n - 1) / 2);
            let max = ctx.reduce_value(MaxOp, ctx.thread_num() as u64);
            assert_eq!(max, n - 1);
            let prod = ctx.reduce_value(ProdOp, 2u64);
            assert_eq!(prod, 1u64 << n);
        }
    });
}

/// Lock fairness smoke: under sustained contention on one `OmpLock`,
/// every thread makes progress and the protected counter is exact (no
/// lost wakeups, no permanent starvation).
#[test]
fn omp_lock_contention_and_progress() {
    let lock = OmpLock::new();
    let shared = AtomicU64::new(0);
    let threads = 4;
    let per_thread = 2_000u64;
    let progress: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        for _ in 0..per_thread {
            lock.with(|| {
                // Non-atomic-looking read-modify-write under the lock:
                // exactness proves mutual exclusion.
                let v = shared.load(Ordering::Relaxed);
                shared.store(v + 1, Ordering::Relaxed);
            });
            progress[ctx.thread_num()].fetch_add(1, Ordering::Relaxed);
        }
    });
    let team = fork_team_size(threads) as u64;
    assert_eq!(shared.load(Ordering::Relaxed), per_thread * team);
    for (t, p) in progress.iter().enumerate().take(team as usize) {
        assert_eq!(
            p.load(Ordering::Relaxed),
            per_thread,
            "thread {t} starved on the contended lock"
        );
    }
}

/// Nestable lock: re-acquisition by the owner is permitted and counted;
/// full release hands the lock over cleanly under contention.
#[test]
fn nest_lock_reentrancy_under_contention() {
    let lock = NestLock::new();
    let shared = AtomicU64::new(0);
    let threads = 4;
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        let _ = ctx;
        for _ in 0..500 {
            let d1 = lock.set();
            let d2 = lock.set(); // re-entrant
            assert_eq!(d2, d1 + 1, "nest depth did not grow on re-acquire");
            let v = shared.load(Ordering::Relaxed);
            shared.store(v + 1, Ordering::Relaxed);
            lock.unset();
            lock.unset();
        }
    });
    assert_eq!(
        shared.load(Ordering::Relaxed),
        500 * fork_team_size(threads) as u64
    );
}

/// Oversubscribed teams (more threads than cores) with barrier-heavy
/// work: the passive wait-policy path must still be exact and must not
/// deadlock.
#[test]
fn oversubscribed_barrier_heavy_region() {
    let threads = icv::hardware_threads() * 2 + 1;
    let counter = AtomicU64::new(0);
    fork(ForkSpec::with_num_threads(threads), |ctx| {
        for _ in 0..25 {
            counter.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        }
    });
    assert_eq!(
        counter.load(Ordering::Relaxed),
        25 * fork_team_size(threads) as u64
    );
}

/// The team size `fork` actually grants for a request of `n` (the pool
/// may clamp at `thread-limit`); mirrors the clamping in `pool::fork`.
fn fork_team_size(requested: usize) -> usize {
    let got = AtomicUsize::new(0);
    fork(ForkSpec::with_num_threads(requested), |ctx| {
        got.store(ctx.num_threads(), Ordering::Relaxed);
    });
    got.load(Ordering::Relaxed).max(1)
}

/// Dependence chains under work stealing: several independent
/// `depend(inout)` chains spawned interleaved from one thread; every
/// link must observe its predecessor's update, while the other threads
/// steal across chains and the taskgroup waits for the whole graph.
#[test]
fn dependent_chains_under_stealing() {
    use romp_runtime::TaskDeps;
    const CHAINS: usize = 8;
    const LINKS: u64 = 25;
    for _ in 0..10 {
        let progress: Vec<AtomicU64> = (0..CHAINS).map(|_| AtomicU64::new(0)).collect();
        let tokens: Vec<u8> = vec![0; CHAINS];
        let (progress, tokens) = (&progress, &tokens);
        fork(ForkSpec::with_num_threads(4), |ctx| {
            if ctx.thread_num() == 0 {
                ctx.taskgroup(|| {
                    for k in 0..LINKS {
                        for c in 0..CHAINS {
                            ctx.task_depend(TaskDeps::new().inout(&tokens[c]), move || {
                                let prev = progress[c].swap(k + 1, Ordering::SeqCst);
                                assert_eq!(prev, k, "chain {c} link {k} ran out of order");
                            });
                        }
                    }
                });
                for (c, p) in progress.iter().enumerate() {
                    assert_eq!(p.load(Ordering::SeqCst), LINKS, "chain {c} incomplete");
                }
            }
        });
    }
}

/// The barrier's task-draining path must also retire *stalled* tasks:
/// a dependence chain spawned right before the implicit region-end
/// barrier, with no taskwait/taskgroup, completes before `fork` returns.
#[test]
fn region_end_barrier_drains_stalled_dependents() {
    for _ in 0..20 {
        let hits = AtomicU64::new(0);
        let token = 0u8;
        let (hits, token) = (&hits, &token);
        fork(ForkSpec::with_num_threads(4), |ctx| {
            if ctx.thread_num() == 0 {
                for _ in 0..50 {
                    ctx.task_depend(romp_runtime::TaskDeps::new().inout(token), move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            // No explicit wait: the implicit barrier owns the drain.
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
    }
}
