//! "Fortran" level-1/2 BLAS kernels, registered in the global symbol
//! table under their mangled names.
//!
//! These are the inner kernels the reference NPB CG translation calls
//! through the interop bridge — the same role the Fortran reference
//! code's inner loops play when invoked from Zig in the paper.
//!
//! Calling conventions follow the BLAS reference signatures, shorn of
//! increments (`incx = incy = 1` throughout, which is all NPB needs):
//!
//! | symbol | signature |
//! |---|---|
//! | `daxpy_` | `(n, a, x[], y[]) : y += a*x` |
//! | `ddot_`  | `(n, x[], y[], out) : out = xᵀy` |
//! | `dnrm2_` | `(n, x[], out) : out = ‖x‖₂` |
//! | `dscal_` | `(n, a, x[]) : x *= a` |
//! | `dcopy_` | `(n, x[], y[]) : y = x` |
//! | `dgemv_` | `(m, n, a[m×n] col-major, x[], y[]) : y = A·x` |

use crate::registry::Registry;

/// Register every kernel into `r`.
pub fn register_all(r: &Registry) {
    r.register("DAXPY", |args| {
        let (head, tail) = args.split_at_mut(3);
        let n = head[0].as_i64() as usize;
        let a = head[1].as_f64();
        let x = head[2].as_f64_slice();
        // Marshalling cost parity with a real FFI boundary: the callee
        // sees raw slices only.
        let y = tail[0].as_f64_slice_mut();
        for i in 0..n {
            y[i] += a * x[i];
        }
    });

    r.register("DDOT", |args| {
        let (head, tail) = args.split_at_mut(3);
        let n = head[0].as_i64() as usize;
        let x = head[1].as_f64_slice();
        let y = head[2].as_f64_slice();
        let mut acc = 0.0;
        for (xi, yi) in x.iter().zip(y).take(n) {
            acc += xi * yi;
        }
        tail[0].set_f64(acc);
    });

    r.register("DNRM2", |args| {
        let (head, tail) = args.split_at_mut(2);
        let n = head[0].as_i64() as usize;
        let x = head[1].as_f64_slice();
        let mut acc = 0.0;
        for xi in x.iter().take(n) {
            acc += xi * xi;
        }
        tail[0].set_f64(acc.sqrt());
    });

    r.register("DSCAL", |args| {
        let (head, tail) = args.split_at_mut(2);
        let n = head[0].as_i64() as usize;
        let a = head[1].as_f64();
        let x = tail[0].as_f64_slice_mut();
        for v in x.iter_mut().take(n) {
            *v *= a;
        }
    });

    r.register("DCOPY", |args| {
        let (head, tail) = args.split_at_mut(2);
        let n = head[0].as_i64() as usize;
        let x = head[1].as_f64_slice();
        let y = tail[0].as_f64_slice_mut();
        y[..n].copy_from_slice(&x[..n]);
    });

    r.register("DGEMV", |args| {
        let (head, tail) = args.split_at_mut(4);
        let m = head[0].as_i64() as usize;
        let n = head[1].as_i64() as usize;
        let a = head[2].as_f64_slice(); // column-major m×n
        let x = head[3].as_f64_slice();
        let y = tail[0].as_f64_slice_mut();
        y[..m].fill(0.0);
        for j in 0..n {
            let xj = x[j];
            let col = &a[j * m..(j + 1) * m];
            for i in 0..m {
                y[i] += col[i] * xj;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::registry::{global_registry, ArgRef, ArgVal};
    use crate::FMatrix;

    #[test]
    fn daxpy() {
        let n = ArgVal::I64(4);
        let a = ArgVal::F64(3.0);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![1.0; 4];
        global_registry()
            .call(
                "daxpy_",
                &mut [
                    n.by_ref(),
                    a.by_ref(),
                    ArgRef::F64Slice(&x),
                    ArgRef::F64SliceMut(&mut y),
                ],
            )
            .unwrap();
        assert_eq!(y, vec![4.0, 7.0, 10.0, 13.0]);
    }

    #[test]
    fn ddot_and_dnrm2_agree() {
        let x = vec![3.0, 4.0];
        let n = ArgVal::I64(2);
        let mut dot = ArgVal::F64(0.0);
        global_registry()
            .call(
                "ddot_",
                &mut [
                    n.by_ref(),
                    ArgRef::F64Slice(&x),
                    ArgRef::F64Slice(&x),
                    dot.by_ref_mut(),
                ],
            )
            .unwrap();
        let mut nrm = ArgVal::F64(0.0);
        global_registry()
            .call(
                "dnrm2_",
                &mut [n.by_ref(), ArgRef::F64Slice(&x), nrm.by_ref_mut()],
            )
            .unwrap();
        assert_eq!(dot, ArgVal::F64(25.0));
        assert_eq!(nrm, ArgVal::F64(5.0));
    }

    #[test]
    fn dscal_scales_prefix_only() {
        let n = ArgVal::I64(2);
        let a = ArgVal::F64(10.0);
        let mut x = vec![1.0, 2.0, 3.0];
        global_registry()
            .call(
                "dscal_",
                &mut [n.by_ref(), a.by_ref(), ArgRef::F64SliceMut(&mut x)],
            )
            .unwrap();
        assert_eq!(x, vec![10.0, 20.0, 3.0]);
    }

    #[test]
    fn dcopy_copies() {
        let n = ArgVal::I64(3);
        let x = vec![7.0, 8.0, 9.0];
        let mut y = vec![0.0; 3];
        global_registry()
            .call(
                "dcopy_",
                &mut [
                    n.by_ref(),
                    ArgRef::F64Slice(&x),
                    ArgRef::F64SliceMut(&mut y),
                ],
            )
            .unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn dgemv_matches_hand_computation() {
        // A = [1 2; 3 4] (math notation), x = [5, 6] -> A·x = [17, 39].
        let mut a = FMatrix::zeros(2, 2);
        a.set(1, 1, 1.0);
        a.set(1, 2, 2.0);
        a.set(2, 1, 3.0);
        a.set(2, 2, 4.0);
        let x = vec![5.0, 6.0];
        let mut y = vec![0.0; 2];
        let m = ArgVal::I64(2);
        let n = ArgVal::I64(2);
        global_registry()
            .call(
                "dgemv_",
                &mut [
                    m.by_ref(),
                    n.by_ref(),
                    ArgRef::F64Slice(a.as_slice()),
                    ArgRef::F64Slice(&x),
                    ArgRef::F64SliceMut(&mut y),
                ],
            )
            .unwrap();
        assert_eq!(y, vec![17.0, 39.0]);
    }
}
