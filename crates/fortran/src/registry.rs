//! The "linker": name mangling, by-reference arguments, symbol registry.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Apply the f77 name-mangling rule the paper uses: lowercase the name
/// and append an underscore (`CONJ_GRAD` → `conj_grad_`).
pub fn mangle(name: &str) -> String {
    let mut s = name.to_ascii_lowercase();
    s.push('_');
    s
}

/// An owned scalar that can be passed by reference, Fortran-style.
/// Fortran passes *everything* by reference, so even an integer literal
/// argument needs an addressable home.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgVal {
    /// `INTEGER*4`
    I32(i32),
    /// `INTEGER*8`
    I64(i64),
    /// `DOUBLE PRECISION`
    F64(f64),
}

impl ArgVal {
    /// Borrow this value as a by-reference argument.
    pub fn by_ref(&self) -> ArgRef<'_> {
        match self {
            ArgVal::I32(v) => ArgRef::I32(v),
            ArgVal::I64(v) => ArgRef::I64(v),
            ArgVal::F64(v) => ArgRef::F64(v),
        }
    }

    /// Borrow mutably (for `INTENT(OUT)`/`INTENT(INOUT)` arguments).
    pub fn by_ref_mut(&mut self) -> ArgRef<'_> {
        match self {
            ArgVal::I32(v) => ArgRef::I32Mut(v),
            ArgVal::I64(v) => ArgRef::I64Mut(v),
            ArgVal::F64(v) => ArgRef::F64Mut(v),
        }
    }
}

/// A by-reference argument, the only kind a "Fortran" procedure accepts.
#[derive(Debug)]
pub enum ArgRef<'a> {
    /// `INTEGER*4`, read-only.
    I32(&'a i32),
    /// `INTEGER*4`, writable.
    I32Mut(&'a mut i32),
    /// `INTEGER*8`, read-only.
    I64(&'a i64),
    /// `INTEGER*8`, writable.
    I64Mut(&'a mut i64),
    /// `DOUBLE PRECISION`, read-only.
    F64(&'a f64),
    /// `DOUBLE PRECISION`, writable.
    F64Mut(&'a mut f64),
    /// `DOUBLE PRECISION` array, read-only.
    F64Slice(&'a [f64]),
    /// `DOUBLE PRECISION` array, writable.
    F64SliceMut(&'a mut [f64]),
    /// `INTEGER*8` array, read-only.
    I64Slice(&'a [i64]),
    /// `INTEGER*8` array, writable.
    I64SliceMut(&'a mut [i64]),
}

impl ArgRef<'_> {
    /// Read an integer argument (either width).
    pub fn as_i64(&self) -> i64 {
        match self {
            ArgRef::I32(v) => **v as i64,
            ArgRef::I32Mut(v) => **v as i64,
            ArgRef::I64(v) => **v,
            ArgRef::I64Mut(v) => **v,
            other => panic!("Fortran argument type mismatch: expected INTEGER, got {other:?}"),
        }
    }

    /// Read a double-precision argument.
    pub fn as_f64(&self) -> f64 {
        match self {
            ArgRef::F64(v) => **v,
            ArgRef::F64Mut(v) => **v,
            other => {
                panic!("Fortran argument type mismatch: expected DOUBLE PRECISION, got {other:?}")
            }
        }
    }

    /// Write through a writable scalar argument.
    pub fn set_f64(&mut self, value: f64) {
        match self {
            ArgRef::F64Mut(v) => **v = value,
            other => panic!("Fortran argument not writable DOUBLE PRECISION: {other:?}"),
        }
    }

    /// Write through a writable integer argument.
    pub fn set_i64(&mut self, value: i64) {
        match self {
            ArgRef::I64Mut(v) => **v = value,
            ArgRef::I32Mut(v) => **v = value as i32,
            other => panic!("Fortran argument not writable INTEGER: {other:?}"),
        }
    }

    /// Read-only view of a double array argument.
    pub fn as_f64_slice(&self) -> &[f64] {
        match self {
            ArgRef::F64Slice(v) => v,
            ArgRef::F64SliceMut(v) => v,
            other => panic!("Fortran argument type mismatch: expected REAL*8 array, got {other:?}"),
        }
    }

    /// Writable view of a double array argument.
    pub fn as_f64_slice_mut(&mut self) -> &mut [f64] {
        match self {
            ArgRef::F64SliceMut(v) => v,
            other => panic!("Fortran argument not a writable REAL*8 array: {other:?}"),
        }
    }

    /// Read-only view of an integer array argument.
    pub fn as_i64_slice(&self) -> &[i64] {
        match self {
            ArgRef::I64Slice(v) => v,
            ArgRef::I64SliceMut(v) => v,
            other => {
                panic!("Fortran argument type mismatch: expected INTEGER*8 array, got {other:?}")
            }
        }
    }

    /// Writable view of an integer array argument.
    pub fn as_i64_slice_mut(&mut self) -> &mut [i64] {
        match self {
            ArgRef::I64SliceMut(v) => v,
            other => panic!("Fortran argument not a writable INTEGER*8 array: {other:?}"),
        }
    }
}

/// A "Fortran" procedure body.
pub type Proc = Arc<dyn for<'a, 'b> Fn(&'a mut [ArgRef<'b>]) + Send + Sync>;

/// Errors from [`Registry::call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// The mangled name is not registered — the moral equivalent of an
    /// `undefined reference to `name_'` link error.
    UnresolvedSymbol(String),
    /// The caller used an unmangled name; real linkers would not find it
    /// either, but we give a friendlier diagnostic.
    MissingMangling(String),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::UnresolvedSymbol(n) => write!(f, "undefined reference to `{n}'"),
            CallError::MissingMangling(n) => write!(
                f,
                "undefined reference to `{n}' (hint: Fortran symbols are lowercase with a \
                 trailing underscore; did you mean `{}`?)",
                mangle(n)
            ),
        }
    }
}

impl std::error::Error for CallError {}

/// A symbol table of "Fortran" procedures.
#[derive(Default)]
pub struct Registry {
    symbols: RwLock<HashMap<String, Proc>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a procedure under its *Fortran source* name; it becomes
    /// callable under the mangled name only.
    pub fn register<F>(&self, name: &str, body: F)
    where
        F: for<'a, 'b> Fn(&'a mut [ArgRef<'b>]) + Send + Sync + 'static,
    {
        self.symbols.write().insert(mangle(name), Arc::new(body));
    }

    /// Is a mangled symbol present?
    pub fn resolves(&self, mangled: &str) -> bool {
        self.symbols.read().contains_key(mangled)
    }

    /// Call a procedure by its **mangled** name with by-reference
    /// arguments.
    pub fn call(&self, mangled: &str, args: &mut [ArgRef<'_>]) -> Result<(), CallError> {
        let proc = {
            let map = self.symbols.read();
            match map.get(mangled) {
                Some(p) => p.clone(),
                None => {
                    return Err(if map.contains_key(&mangle(mangled)) {
                        CallError::MissingMangling(mangled.to_string())
                    } else {
                        CallError::UnresolvedSymbol(mangled.to_string())
                    });
                }
            }
        };
        proc(args);
        Ok(())
    }

    /// Number of registered symbols.
    pub fn len(&self) -> usize {
        self.symbols.read().len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.symbols.read().is_empty()
    }
}

/// The process-wide registry ("the Fortran object files we linked in").
/// The BLAS-ish kernels in [`crate::blas`] are pre-registered.
pub fn global_registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = Registry::new();
        crate::blas::register_all(&r);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling_rule() {
        assert_eq!(mangle("CONJ_GRAD"), "conj_grad_");
        assert_eq!(mangle("daxpy"), "daxpy_");
        assert_eq!(mangle("MixedCase"), "mixedcase_");
    }

    #[test]
    fn register_and_call_by_mangled_name() {
        let r = Registry::new();
        r.register("TWICE", |args| {
            let v = args[0].as_f64();
            args[1].set_f64(2.0 * v);
        });
        assert!(r.resolves("twice_"));
        assert!(!r.resolves("TWICE"));
        let x = ArgVal::F64(21.0);
        let mut out = ArgVal::F64(0.0);
        r.call("twice_", &mut [x.by_ref(), out.by_ref_mut()])
            .unwrap();
        assert_eq!(out, ArgVal::F64(42.0));
    }

    #[test]
    fn unmangled_call_fails_with_hint() {
        let r = Registry::new();
        r.register("SAXPY", |_| {});
        let err = r.call("SAXPY", &mut []).unwrap_err();
        match &err {
            CallError::MissingMangling(n) => assert_eq!(n, "SAXPY"),
            other => panic!("unexpected: {other:?}"),
        }
        let msg = r.call("saxpy", &mut []).unwrap_err().to_string();
        assert!(
            msg.contains("saxpy_"),
            "hint should suggest mangled name: {msg}"
        );
    }

    #[test]
    fn unresolved_symbol_reads_like_a_link_error() {
        let r = Registry::new();
        let msg = r.call("nope_", &mut []).unwrap_err().to_string();
        assert!(msg.contains("undefined reference"), "{msg}");
    }

    #[test]
    fn scalar_roundtrip_by_reference() {
        let mut v = ArgVal::I64(7);
        {
            let mut r = v.by_ref_mut();
            assert_eq!(r.as_i64(), 7);
            r.set_i64(9);
        }
        assert_eq!(v, ArgVal::I64(9));
    }

    #[test]
    fn i32_width_coercion() {
        let v = ArgVal::I32(-5);
        assert_eq!(v.by_ref().as_i64(), -5);
        let mut w = ArgVal::I32(0);
        w.by_ref_mut().set_i64(123);
        assert_eq!(w, ArgVal::I32(123));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let v = ArgVal::F64(1.0);
        v.by_ref().as_i64();
    }

    #[test]
    fn global_registry_has_blas() {
        let g = global_registry();
        for sym in ["daxpy_", "ddot_", "dnrm2_", "dscal_", "dgemv_", "dcopy_"] {
            assert!(g.resolves(sym), "missing pre-registered symbol {sym}");
        }
    }
}
