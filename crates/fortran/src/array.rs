//! Column-major, 1-based arrays: Fortran's memory model.
//!
//! Passing a matrix between Rust and "Fortran" means agreeing on layout:
//! Fortran stores `A(i,j)` with `i` fastest (column-major) and indexes
//! from 1. [`FMatrix`] enforces both, and exposes the flat storage for
//! by-reference passing through the [`crate::registry`] bridge.

use std::fmt;

/// A dense `DOUBLE PRECISION` matrix in Fortran layout.
#[derive(Debug, Clone, PartialEq)]
pub struct FMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FMatrix {
    /// `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        FMatrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a row-major Rust closure (`f(i, j)` with 1-based
    /// `i`, `j`), stored column-major.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = FMatrix::zeros(rows, cols);
        for j in 1..=cols {
            for i in 1..=rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn offset(&self, i: usize, j: usize) -> usize {
        assert!(
            (1..=self.rows).contains(&i) && (1..=self.cols).contains(&j),
            "Fortran index ({i},{j}) out of bounds for {}x{} array (1-based)",
            self.rows,
            self.cols
        );
        // Column-major: i varies fastest.
        (j - 1) * self.rows + (i - 1)
    }

    /// `A(i,j)`, 1-based.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.offset(i, j)]
    }

    /// `A(i,j) = v`, 1-based.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let o = self.offset(i, j);
        self.data[o] = v;
    }

    /// The flat column-major storage (what a Fortran callee receives).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Writable flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` (1-based) as a contiguous slice — columns are
    /// contiguous in Fortran layout, rows are not.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!((1..=self.cols).contains(&j), "column {j} out of bounds");
        &self.data[(j - 1) * self.rows..j * self.rows]
    }

    /// Writable column.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!((1..=self.cols).contains(&j), "column {j} out of bounds");
        let r = self.rows;
        &mut self.data[(j - 1) * r..j * r]
    }
}

impl fmt::Display for FMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 1..=self.rows {
            for j in 1..=self.cols {
                write!(f, "{:>12.5}", self.get(i, j))?;
                if j < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        // A = [1 3; 2 4] stored as [1, 2, 3, 4].
        let mut a = FMatrix::zeros(2, 2);
        a.set(1, 1, 1.0);
        a.set(2, 1, 2.0);
        a.set(1, 2, 3.0);
        a.set(2, 2, 4.0);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn one_based_indexing() {
        let a = FMatrix::from_fn(3, 4, |i, j| (10 * i + j) as f64);
        assert_eq!(a.get(1, 1), 11.0);
        assert_eq!(a.get(3, 4), 34.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn zero_index_rejected() {
        FMatrix::zeros(2, 2).get(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overflow_index_rejected() {
        FMatrix::zeros(2, 2).get(1, 3);
    }

    #[test]
    fn columns_are_contiguous() {
        let a = FMatrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(a.col(1), &[11.0, 12.0, 13.0]);
        assert_eq!(a.col(2), &[21.0, 22.0, 23.0]);
    }

    #[test]
    fn col_mut_writes_through() {
        let mut a = FMatrix::zeros(2, 2);
        a.col_mut(2).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(a.get(1, 2), 5.0);
        assert_eq!(a.get(2, 2), 6.0);
    }

    #[test]
    fn display_renders_row_major_view() {
        let a = FMatrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        let s = a.to_string();
        let first_line = s.lines().next().unwrap();
        assert!(first_line.contains("11") && first_line.contains("12"));
    }
}
