//! # romp-fortran — Fortran interoperability, simulated
//!
//! The paper establishes Zig↔Fortran interoperability by declaring
//! Fortran procedures "as C linkage functions using pointer arguments,
//! and appending underscores to function names to comply with the
//! Fortran compiler's name mangling scheme". This crate reproduces that
//! *mechanism* inside one process:
//!
//! * [`mangle`] — the classic f77 name-mangling rule
//!   (lowercase + trailing `_`);
//! * [`ArgRef`]/[`ArgVal`] — all arguments strictly by reference, the
//!   Fortran calling convention (even scalars);
//! * [`FMatrix`] — column-major, 1-based 2-D arrays, Fortran's memory
//!   layout;
//! * [`Registry`] — a symbol table of "Fortran" procedures, callable
//!   only through their mangled names, exactly like a linker would
//!   resolve them.
//!
//! The reference translations of the NPB CG and EP kernels (whose
//! originals are Fortran) call their inner kernels through this bridge,
//! so the per-call marshalling discipline the paper's interop layer pays
//! is present in our "Reference" measurements too.
//!
//! ```
//! use romp_fortran::{global_registry, mangle, ArgRef, ArgVal};
//!
//! // Register a "Fortran" DAXPY: y := a*x + y  (all args by reference).
//! global_registry().register("DEMO_DAXPY", |args| {
//!     let (head, tail) = args.split_at_mut(3);
//!     let n = head[0].as_i64();
//!     let a = head[1].as_f64();
//!     let x = head[2].as_f64_slice().to_vec();
//!     let y = tail[0].as_f64_slice_mut();
//!     for i in 0..n as usize {
//!         y[i] += a * x[i];
//!     }
//! });
//!
//! let x = vec![1.0, 2.0, 3.0];
//! let mut y = vec![10.0, 10.0, 10.0];
//! assert_eq!(mangle("DEMO_DAXPY"), "demo_daxpy_");
//! let n = ArgVal::I64(3);
//! let a = ArgVal::F64(2.0);
//! global_registry()
//!     .call(
//!         "demo_daxpy_",
//!         &mut [
//!             n.by_ref(),
//!             a.by_ref(),
//!             ArgRef::F64Slice(&x),
//!             ArgRef::F64SliceMut(&mut y),
//!         ],
//!     )
//!     .unwrap();
//! assert_eq!(y, vec![12.0, 14.0, 16.0]);
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod blas;
pub mod registry;

pub use array::FMatrix;
pub use registry::{global_registry, mangle, ArgRef, ArgVal, CallError, Registry};
