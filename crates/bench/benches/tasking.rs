//! BENCH — tasking overheads: spawn/steal cost, the dependence-table
//! tax, and the blocked-wavefront workload across team sizes.
//!
//! Three questions, pinned against each other:
//!
//! 1. What does one task cost end to end (spawn → steal → execute →
//!    retire)? `spawn_drain` floods one spawner's deque and drains it
//!    through the team.
//! 2. What does the dependence table add? `chain_dependent` runs the
//!    `spawn_drain/4` task count through a single `inout` chain
//!    (maximum table pressure, zero available parallelism), and
//!    `taskloop_plain` is the worksharing-shaped baseline the
//!    dependence-table overhead is pinned against.
//! 3. Does the graph scale a real irregular workload? The class-S
//!    wavefront at 1/2/4 threads.
//!
//! The task statistics banner is printed at the end so stealing and
//! stall behavior is visible next to the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_core::prelude::*;
use romp_npb::sw;
use romp_npb::Class;
use std::sync::atomic::{AtomicU64, Ordering};

const TASKS: usize = 2_000;

fn bench_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_spawn");
    g.sample_size(15);

    for threads in [1usize, 4] {
        g.bench_function(BenchmarkId::new("spawn_drain", threads), |bch| {
            bch.iter(|| {
                let hits = AtomicU64::new(0);
                let hits = &hits;
                omp_parallel!(num_threads(threads), |ctx| {
                    omp_single!(ctx, nowait, {
                        for _ in 0..TASKS {
                            omp_task!(ctx, {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
                assert_eq!(hits.load(Ordering::Relaxed), TASKS as u64);
            })
        });
    }

    g.bench_function(BenchmarkId::from_parameter("taskloop_plain_4t"), |bch| {
        bch.iter(|| {
            let hits = AtomicU64::new(0);
            let hits = &hits;
            omp_parallel!(num_threads(4), |ctx| {
                omp_single!(ctx, {
                    omp_taskloop!(
                        ctx,
                        num_tasks(TASKS),
                        for _i in (0..TASKS) {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    );
                });
            });
            assert_eq!(hits.load(Ordering::Relaxed), TASKS as u64);
        })
    });
    g.finish();
}

fn bench_dependence_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_deps");
    g.sample_size(15);

    // The no-dependence baseline for this group is
    // `task_spawn/spawn_drain/4` above: identical spawner, team and
    // task count, zero table traffic.
    g.bench_function(BenchmarkId::from_parameter("chain_dependent"), |bch| {
        bch.iter(|| {
            let hits = AtomicU64::new(0);
            let token = 0u8;
            let (hits, token) = (&hits, &token);
            omp_parallel!(num_threads(4), |ctx| {
                omp_single!(ctx, nowait, {
                    for _ in 0..TASKS {
                        omp_task!(ctx, depend(inout: *token), {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            hits.load(Ordering::Relaxed)
        })
    });
    g.finish();
}

fn bench_wavefront(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavefront_class_s");
    g.sample_size(10);
    let want = sw::expected_checksum(Class::S);
    for threads in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new("task_graph", threads), |bch| {
            bch.iter(|| {
                let sum = sw::compute_tasks_macro(Class::S, threads);
                assert_eq!(sum, want);
                sum
            })
        });
    }
    g.finish();
    println!("{}", romp_runtime::stats::display_stats());
}

criterion_group!(
    benches,
    bench_spawn,
    bench_dependence_table,
    bench_wavefront
);
criterion_main!(benches);
