//! Ablation A2 — barrier algorithm: centralized sense-reversing vs
//! dissemination, across team sizes.
//!
//! Measures 100 barrier episodes per region (amortizing the fork), the
//! dominant synchronization cost of barrier-heavy codes like CG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_runtime::{fork, icv, BarrierKind, ForkSpec};

fn bench_barriers(c: &mut Criterion) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("barrier_100_episodes");
    g.sample_size(10);
    let mut teams = vec![2usize, 4, hw.max(2)];
    teams.sort_unstable();
    teams.dedup();
    for kind in [BarrierKind::Central, BarrierKind::Dissemination] {
        for &team in &teams {
            let label = format!("{kind:?}/{team}t");
            g.bench_with_input(
                BenchmarkId::from_parameter(label),
                &(kind, team),
                |b, &(k, t)| {
                    icv::with_global_mut(|i| i.barrier_kind = k);
                    b.iter(|| {
                        fork(ForkSpec::with_num_threads(t), |ctx| {
                            for _ in 0..100 {
                                ctx.barrier();
                            }
                        });
                    });
                    icv::with_global_mut(|i| i.barrier_kind = BarrierKind::Central);
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
