//! Ablation A1 — the `schedule` clause under load imbalance.
//!
//! The paper implements OpenMP's `schedule` clause; Mandelbrot is its
//! imbalanced workload. This bench renders Mandelbrot class S under
//! every schedule kind: `dynamic`/`guided` should beat plain `static`
//! whenever more than one core is available, because interior rows cost
//! many times more than edge rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_core::Schedule;
use romp_npb::mandelbrot;
use romp_npb::verify::Variant;
use romp_npb::Class;

fn bench_schedules(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("mandelbrot_schedule");
    g.sample_size(10);
    for (label, sched) in [
        ("static", Schedule::static_block()),
        ("static_8", Schedule::static_chunk(8)),
        ("dynamic_1", Schedule::dynamic()),
        ("dynamic_4", Schedule::dynamic_chunk(4)),
        ("guided", Schedule::guided()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &sched, |b, &s| {
            b.iter(|| {
                let r = mandelbrot::run_with_schedule(Class::S, threads, s, Variant::Romp);
                assert!(r.verified);
                r.checksum
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedules);
criterion_main!(benches);
