//! Ablation A4 — fork/join overhead.
//!
//! The paper's design outlines parallel regions into functions and
//! calls the runtime per region; this bench measures the cost of that
//! design: an empty `parallel` region through the romp pool versus
//! spawning fresh OS threads with `std::thread::scope` (what a naive
//! implementation without a persistent pool would pay), plus a tiny
//! 1k-iteration `parallel for` to show the crossover at small grains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_forkjoin(c: &mut Criterion) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = c.benchmark_group("forkjoin");
    g.sample_size(20);

    let mut teams = vec![1usize, 2, hw.max(2)];
    teams.sort_unstable();
    teams.dedup();
    for t in teams {
        g.bench_with_input(BenchmarkId::new("romp_empty_region", t), &t, |b, &t| {
            // Warm the pool so we measure reuse, not spawning.
            fork(ForkSpec::with_num_threads(t), |_| {});
            b.iter(|| {
                fork(ForkSpec::with_num_threads(t), |_| {});
            })
        });
        g.bench_with_input(BenchmarkId::new("std_scope_empty", t), &t, |b, &t| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..t.saturating_sub(1) {
                        s.spawn(|| {});
                    }
                });
            })
        });
        g.bench_with_input(BenchmarkId::new("romp_tiny_for_1k", t), &t, |b, &t| {
            let acc = AtomicU64::new(0);
            b.iter(|| {
                par_for(0..1000usize).num_threads(t).run(|i| {
                    acc.fetch_add(i as u64, Ordering::Relaxed);
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_forkjoin);
criterion_main!(benches);
