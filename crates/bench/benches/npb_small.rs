//! Criterion companion to the `table1` binary: the four Table-1
//! workloads at class S (small enough for statistical repetition),
//! Reference vs Romp configuration — the per-kernel comparison the
//! paper's Table 1 makes at class C.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_npb::{cg, ep, is, mandelbrot, Class};

fn bench_npb_small(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let class = Class::S;
    let mut g = c.benchmark_group("npb_class_S");
    g.sample_size(10);

    let setup = cg::setup(class);
    g.bench_function(BenchmarkId::new("cg", "reference"), |b| {
        b.iter(|| {
            let r = cg::reference::run_with(&setup, threads);
            assert!(r.verified);
        })
    });
    g.bench_function(BenchmarkId::new("cg", "romp"), |b| {
        b.iter(|| {
            let r = cg::romp::run_with(&setup, threads);
            assert!(r.verified);
        })
    });

    g.bench_function(BenchmarkId::new("ep", "reference"), |b| {
        b.iter(|| {
            let r = ep::reference::run(class, threads);
            assert!(r.verified);
        })
    });
    g.bench_function(BenchmarkId::new("ep", "romp"), |b| {
        b.iter(|| {
            let r = ep::romp::run(class, threads);
            assert!(r.verified);
        })
    });

    g.bench_function(BenchmarkId::new("is", "reference"), |b| {
        b.iter(|| {
            let r = is::reference::run(class, threads);
            assert!(r.verified);
        })
    });
    g.bench_function(BenchmarkId::new("is", "romp"), |b| {
        b.iter(|| {
            let r = is::romp::run(class, threads);
            assert!(r.verified);
        })
    });

    g.bench_function(BenchmarkId::new("mandelbrot", "reference"), |b| {
        b.iter(|| {
            let r = mandelbrot::reference::run(class, threads);
            assert!(r.verified);
        })
    });
    g.bench_function(BenchmarkId::new("mandelbrot", "romp"), |b| {
        b.iter(|| {
            let r = mandelbrot::romp::run(class, threads);
            assert!(r.verified);
        })
    });

    g.finish();
}

criterion_group!(benches, bench_npb_small);
criterion_main!(benches);
