//! Ablation A3 — reduction strategies for the `reduction` clause.
//!
//! Three lowerings of the same dot product:
//! * **partials** — per-thread private accumulation, one lock-combine
//!   per thread at the end (what romp's clause generates);
//! * **atomic** — `fetch_add`-per-iteration on a shared atomic (the
//!   naive translation the clause exists to avoid);
//! * **critical** — a critical section per iteration (the worst case).
//!
//! The expected shape: partials ≫ atomic ≫ critical as iteration counts
//! grow — the reason OpenMP has a reduction clause at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

const N: usize = 100_000;

fn data() -> Vec<f64> {
    (0..N).map(|i| (i as f64 * 0.001).sin()).collect()
}

fn bench_reductions(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let v = data();
    let mut g = c.benchmark_group("reduction_dot");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::from_parameter("partials"), &v, |b, v| {
        b.iter(|| {
            par_for(0..N)
                .num_threads(threads)
                .reduce(SumOp, 0.0f64, |i, acc| *acc += v[i] * v[i])
        })
    });

    g.bench_with_input(BenchmarkId::from_parameter("atomic"), &v, |b, v| {
        b.iter(|| {
            // f64 sum via CAS-free integer milli-units to keep the
            // comparison about synchronization, not CAS loops.
            let acc = AtomicU64::new(0);
            par_for(0..N).num_threads(threads).run(|i| {
                let q = (v[i] * v[i] * 1e6) as u64;
                acc.fetch_add(q, Ordering::Relaxed);
            });
            acc.into_inner() as f64 / 1e6
        })
    });

    g.bench_with_input(BenchmarkId::from_parameter("critical"), &v, |b, v| {
        b.iter(|| {
            let acc = std::sync::Mutex::new(0.0f64);
            par_for(0..N).num_threads(threads).run(|i| {
                romp_core::critical(|| {
                    *acc.lock().unwrap() += v[i] * v[i];
                });
            });
            acc.into_inner().unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
