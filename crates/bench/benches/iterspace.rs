//! BENCH — per-iteration dispatch overhead of decoded iteration spaces.
//!
//! The `IterSpace` redesign routes every loop shape through a
//! normalized `0..trip` driver plus a chunk-granular decoder. This
//! bench pins the cost of that decoding against a raw serial `Range`
//! loop over the same number of points, on a single thread (so team
//! scheduling noise is out of the picture and only dispatch shape
//! remains): raw range, builder `run` over `Range`, `run_chunks`,
//! `StridedRange`, `collapse2`, `collapse3` — and the old per-iteration
//! `div`/`mod` decode that `ParFor2` used before the redesign, as the
//! regression baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use romp_core::prelude::*;

const N: usize = 1 << 16;
const SIDE: usize = 1 << 8; // SIDE * SIDE == N
const EDGE: usize = 1 << 4; // EDGE^4 == N (collapse3 uses EDGE^2 inner)

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("iterspace_dispatch");
    g.sample_size(20);

    g.bench_function(BenchmarkId::from_parameter("raw_range_serial"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(black_box(i) as u64);
            }
            acc
        })
    });

    g.bench_function(BenchmarkId::from_parameter("range_run"), |b| {
        b.iter(|| {
            let acc = std::sync::atomic::AtomicU64::new(0);
            par_for(0..N).num_threads(1).run(|i| {
                acc.fetch_add(black_box(i) as u64, std::sync::atomic::Ordering::Relaxed);
            });
            acc.into_inner()
        })
    });

    g.bench_function(BenchmarkId::from_parameter("range_reduce_chunks"), |b| {
        b.iter(|| {
            par_for(0..N)
                .num_threads(1)
                .reduce_chunks(SumOp, 0u64, |r, acc| {
                    for i in r {
                        *acc = acc.wrapping_add(black_box(i) as u64);
                    }
                })
        })
    });

    g.bench_function(BenchmarkId::from_parameter("strided_reduce_chunks"), |b| {
        b.iter(|| {
            par_for(StridedRange::new(0, N as i64, 1))
                .num_threads(1)
                .reduce_chunks(SumOp, 0u64, |c, acc| {
                    for i in c {
                        *acc = acc.wrapping_add(black_box(i) as u64);
                    }
                })
        })
    });

    g.bench_function(
        BenchmarkId::from_parameter("collapse2_reduce_chunks"),
        |b| {
            b.iter(|| {
                par_for(collapse2(0..SIDE, 0..SIDE))
                    .num_threads(1)
                    .reduce_chunks(SumOp, 0u64, |c, acc| {
                        for (i, j) in c {
                            *acc = acc.wrapping_add(black_box(i * SIDE + j) as u64);
                        }
                    })
            })
        },
    );

    g.bench_function(
        BenchmarkId::from_parameter("collapse3_reduce_chunks"),
        |b| {
            b.iter(|| {
                par_for(collapse3(0..EDGE, 0..EDGE, 0..EDGE * EDGE))
                    .num_threads(1)
                    .reduce_chunks(SumOp, 0u64, |c, acc| {
                        for (i, j, k) in c {
                            *acc = acc
                                .wrapping_add(black_box((i * EDGE + j) * EDGE * EDGE + k) as u64);
                        }
                    })
            })
        },
    );

    // Pre-redesign baseline: what `ParFor2::run` cost per iteration —
    // a `div` + `mod` with a `max(1)` guard on every point.
    g.bench_function(
        BenchmarkId::from_parameter("collapse2_divmod_per_iter"),
        |b| {
            b.iter(|| {
                let iw = SIDE;
                par_for(0..N)
                    .num_threads(1)
                    .reduce_chunks(SumOp, 0u64, |r, acc| {
                        for k in r {
                            let (i, j) = (k / iw.max(1), k % iw.max(1));
                            *acc = acc.wrapping_add(black_box(i * SIDE + j) as u64);
                        }
                    })
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
