//! # romp-bench — the paper-reproduction harness
//!
//! Binaries regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index):
//!
//! * `table1` — Table 1: Reference vs Romp+OpenMP runtimes for CG, EP,
//!   IS and Mandelbrot, plus the relative deltas the text quotes;
//! * `speedup` — the speedup-relative-to-one-thread series the text
//!   reports;
//! * `figure1` — the pragma-interception pipeline, stage by stage.
//!
//! Criterion benches cover the design-choice ablations (`schedules`,
//! `barriers`, `reductions`, `forkjoin`, `npb_small`).
//!
//! Reports are printed and also written as CSV under
//! `target/romp-reports/`.

#![warn(missing_docs)]

use romp_npb::KernelResult;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Parse `--key value` style options from `std::env::args`.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Is `--name` present (as a bare flag)?
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Default thread count: the machine's hardware concurrency.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The git revision describing this build: `ROMP_BENCH_GIT_REV` when
/// set (CI pins it to the exact commit under test), else `git
/// rev-parse --short HEAD`, else `"unknown"` (tarball builds).
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("ROMP_BENCH_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The run-metadata object every committed `BENCH_*.json` carries, as
/// a JSON fragment (`{"git_rev": ..., "hardware_threads": ...}`).
/// Deliberately **timestamp-free**: regenerating a report on the same
/// commit and machine must produce a clean diff, so trajectory tooling
/// aligns runs by revision, not wall clock.
pub fn meta_json() -> String {
    format!(
        "{{\"git_rev\": \"{}\", \"hardware_threads\": {}}}",
        git_rev().replace('"', ""),
        romp_runtime::icv::hardware_threads()
    )
}

/// Render kernel results as an aligned table, one row per variant.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let rule: usize = widths.iter().sum::<usize>() + 3 * widths.len();
    let _ = writeln!(out, "{}", "-".repeat(rule));
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}   ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(rule));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:<w$}   ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    let _ = writeln!(out, "{}", "-".repeat(rule));
    out
}

/// Write a CSV report under `target/romp-reports/<name>.csv`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/romp-reports");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = header.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

/// One row of Table 1: kernel results per variant.
pub fn result_row(r: &KernelResult) -> Vec<String> {
    vec![
        r.name.to_string(),
        r.class.to_string(),
        r.variant.to_string(),
        r.threads.to_string(),
        format!("{:.3}", r.time_s),
        format!("{:.2}", r.mops),
        if r.verified { "yes" } else { "NO" }.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("longer"));
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 6);
    }

    #[test]
    fn csv_written() {
        let p = write_csv(
            "unit-test",
            &["k", "v"],
            &[vec!["a".into(), "1".into()], vec!["b".into(), "2".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(p).unwrap();
        assert_eq!(body, "k,v\na,1\nb,2\n");
    }

    #[test]
    fn meta_is_valid_and_timestamp_free() {
        let m = meta_json();
        assert!(m.starts_with('{') && m.ends_with('}'), "{m}");
        assert!(m.contains("\"git_rev\": \""), "{m}");
        assert!(m.contains("\"hardware_threads\": "), "{m}");
        assert!(!m.to_lowercase().contains("time"), "{m}");
    }

    #[test]
    fn args_lookup() {
        let a = Args {
            raw: vec!["--class".into(), "A".into(), "--quick".into()],
        };
        assert_eq!(a.value_of("class"), Some("A"));
        assert!(a.has("quick"));
        assert!(!a.has("slow"));
        assert_eq!(a.value_of("missing"), None);
    }
}
