//! spmvbench — SELL-C-σ vs CSR sparse-kernel throughput.
//!
//! The sparse leg of the perf trajectory: measures `y = A·x` (spmv)
//! and one colored Kaczmarz sweep (kacz) in both storage formats, over
//! format × threads × schedule, on two class-S-scale matrices — the
//! CARP class-S banded system (the red-black zoning path) and an
//! irregular random-sparsity matrix of the same scale (the
//! multicoloring path, where σ-sorting earns its keep). Reported
//! figures are GFLOP/s (2·nnz flops per spmv, 4·nnz per sweep) plus
//! the SELL padding overhead (`padded_nnz / nnz`; the acceptance bar
//! for class S is < 2×).
//!
//! An adaptive probe runs the `romp::variants` entries
//! (`"sparse-spmv"`, `"carp-dkswp"`) enough times to drive the
//! probe-then-lock selection, and the registry state
//! (`variants::dump()`) is serialized into the JSON so a committed
//! report records *which* format the machine locked to.
//!
//! Results are printed as a table and written as machine-readable JSON
//! (default `BENCH_spmv.json`, committed alongside
//! `BENCH_syncbench.json` with the same timestamp-free `meta` block).
//!
//! Usage: `spmvbench [--reps N] [--outer N] [--out PATH]`.

use romp_bench::{render_table, Args};
use romp_core::prelude::*;
use romp_npb::carp::{SELL_C, SELL_SIGMA};
use romp_npb::Class;
use romp_runtime::tune::variants;
use romp_sparse::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured cell.
struct Row {
    matrix: &'static str,
    kernel: &'static str,
    format: &'static str,
    threads: usize,
    schedule: &'static str,
    gflops: f64,
}

/// One benchmarked matrix with both layouts prebuilt.
struct Problem {
    name: &'static str,
    mat: Csr,
    coloring: Coloring,
    sell: Sell,
    colored: ColoredSell,
    norms: Vec<f64>,
    b: Vec<f64>,
}

impl Problem {
    fn build(name: &'static str, mat: Csr) -> Problem {
        let coloring = romp_sparse::color::auto(&mat, 4);
        let sell = Sell::from_csr(&mat, SELL_C, SELL_SIGMA);
        let colored = ColoredSell::build(&mat, &coloring, SELL_C, SELL_SIGMA);
        let norms = mat.row_norms_sq();
        let b = matgen::consistent_rhs(&mat);
        Problem {
            name,
            mat,
            coloring,
            sell,
            colored,
            norms,
            b,
        }
    }
}

/// Mean seconds per inner repetition of `body`, over `outer` trials,
/// with a small untimed warm-up (team build, variant probing).
fn time_mean(outer: usize, reps: usize, mut body: impl FnMut()) -> f64 {
    for _ in 0..3 {
        body();
    }
    let mut total = 0.0;
    for _ in 0..outer {
        let t0 = Instant::now();
        for _ in 0..reps {
            body();
        }
        total += t0.elapsed().as_secs_f64() / reps as f64;
    }
    total / outer as f64
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let args = Args::parse();
    let reps: usize = args
        .value_of("reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let outer: usize = args
        .value_of("outer")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let out_path = args.value_of("out").unwrap_or("BENCH_spmv.json");

    // The two class-S-scale systems: the CARP class-S banded matrix
    // (zoned coloring) and an irregular general-sparsity matrix of the
    // same dimension (multicolored; σ-sorting actually reorders rows).
    let problems = [
        Problem::build("carp-S", romp_npb::carp::setup(Class::S).mat),
        Problem::build("random-S", matgen::random_sparse(1400, 10, 271_828)),
    ];

    let thread_counts = [1usize, 2, 4];
    let schedules: [(&'static str, Schedule); 3] = [
        ("static", Schedule::static_block()),
        ("dynamic,16", Schedule::dynamic_chunk(16)),
        ("guided", Schedule::guided()),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for prob in &problems {
        let nnz = prob.mat.nnz();
        let spmv_flops = 2.0 * nnz as f64;
        let sweep_flops = 4.0 * nnz as f64;
        let x: Vec<f64> = (0..prob.mat.n)
            .map(|i| 1.0 + (i % 13) as f64 * 0.1)
            .collect();
        let mut y = vec![0.0; prob.mat.n];
        let x0: Vec<f64> = vec![0.0; prob.mat.n];
        for &t in &thread_counts {
            for &(sname, sched) in &schedules {
                let secs = time_mean(outer, reps, || {
                    prob.mat.spmv(&x, &mut y, t, sched);
                });
                rows.push(Row {
                    matrix: prob.name,
                    kernel: "spmv",
                    format: "csr",
                    threads: t,
                    schedule: sname,
                    gflops: spmv_flops / secs / 1e9,
                });
                let secs = time_mean(outer, reps, || {
                    prob.sell.spmv(&x, &mut y, t, sched);
                });
                rows.push(Row {
                    matrix: prob.name,
                    kernel: "spmv",
                    format: "sell",
                    threads: t,
                    schedule: sname,
                    gflops: spmv_flops / secs / 1e9,
                });
                let secs = time_mean(outer, reps, || {
                    let mut xs = x0.clone();
                    sweep_csr_builder(
                        &prob.mat,
                        &prob.norms,
                        &prob.coloring,
                        &mut xs,
                        &prob.b,
                        1.0,
                        Direction::Forward,
                        t,
                        sched,
                    );
                });
                rows.push(Row {
                    matrix: prob.name,
                    kernel: "kacz",
                    format: "csr",
                    threads: t,
                    schedule: sname,
                    gflops: sweep_flops / secs / 1e9,
                });
                let secs = time_mean(outer, reps, || {
                    let mut xs = x0.clone();
                    prob.colored.sweep_builder(
                        &prob.norms,
                        &mut xs,
                        &prob.b,
                        1.0,
                        Direction::Forward,
                        t,
                        sched,
                    );
                });
                rows.push(Row {
                    matrix: prob.name,
                    kernel: "kacz",
                    format: "sell",
                    threads: t,
                    schedule: sname,
                    gflops: sweep_flops / secs / 1e9,
                });
            }
        }
        // Drive the adaptive entries through their probe rounds so the
        // registry locks a choice this run can report.
        for _ in 0..8 {
            spmv_adaptive(
                &prob.mat,
                &prob.sell,
                &x,
                &mut y,
                4,
                Schedule::static_block(),
            );
        }
    }
    {
        // One adaptive solve per problem populates "carp-dkswp" too.
        for prob in &problems {
            let csr_op = SweepMat::Csr {
                mat: &prob.mat,
                coloring: &prob.coloring,
            };
            let sell_op = SweepMat::Sell(&prob.colored);
            let opts = CarpOptions {
                threads: 4,
                max_iters: 50,
                tol: 1e-6,
                ..Default::default()
            };
            for _ in 0..4 {
                let _ = carp_cg_adaptive(&csr_op, &sell_op, &prob.norms, &prob.b, &opts);
            }
        }
    }

    // ---------------- tables ----------------
    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            r.matrix.to_string(),
            r.kernel.to_string(),
            r.format.to_string(),
            r.threads.to_string(),
            r.schedule.to_string(),
            format!("{:.3}", r.gflops),
        ]);
    }
    println!(
        "{}",
        render_table(
            "spmvbench — sparse kernel throughput (GFLOP/s), CSR vs SELL-C-σ",
            &["matrix", "kernel", "format", "threads", "schedule", "GFLOP/s"],
            &table,
        )
    );
    for prob in &problems {
        println!(
            "{}: n={} nnz={} | SELL(C={SELL_C},σ={SELL_SIGMA}) fill={:.3}x, \
             colored fill={:.3}x, {} coloring phases",
            prob.name,
            prob.mat.n,
            prob.mat.nnz(),
            prob.sell.fill_ratio(),
            prob.colored.sell.fill_ratio(),
            prob.coloring.nphases(),
        );
    }
    println!("{}", variants::display_variants_table());

    // ---------------- JSON ----------------
    let best = |matrix: &str, kernel: &str, format: &str| {
        rows.iter()
            .filter(|r| r.matrix == matrix && r.kernel == kernel && r.format == format)
            .map(|r| r.gflops)
            .fold(f64::NAN, f64::max)
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"spmv\",");
    let _ = writeln!(json, "  \"meta\": {},", romp_bench::meta_json());
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"outer\": {outer},");
    let _ = writeln!(json, "  \"matrices\": [");
    for (i, prob) in problems.iter().enumerate() {
        let comma = if i + 1 == problems.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \"sell_c\": {SELL_C}, \
             \"sell_sigma\": {SELL_SIGMA}, \"sell_fill_ratio\": {}, \
             \"colored_sell_fill_ratio\": {}, \"coloring_phases\": {}}}{comma}",
            prob.name,
            prob.mat.n,
            prob.mat.nnz(),
            json_f(prob.sell.fill_ratio()),
            json_f(prob.colored.sell.fill_ratio()),
            prob.coloring.nphases(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"matrix\": \"{}\", \"kernel\": \"{}\", \"format\": \"{}\", \
             \"threads\": {}, \"schedule\": \"{}\", \"gflops\": {}}}{comma}",
            r.matrix,
            r.kernel,
            r.format,
            r.threads,
            r.schedule,
            json_f(r.gflops),
        );
    }
    let _ = writeln!(json, "  ],");
    let samples = variants::dump();
    let _ = writeln!(json, "  \"variants\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let chosen = s
            .chosen
            .map(|c| c.to_string())
            .unwrap_or_else(|| "null".into());
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"bucket\": {}, \"n_variants\": {}, \
             \"chosen\": {chosen}, \"probes\": {}}}{comma}",
            s.name, s.bucket, s.n_variants, s.probes,
        );
    }
    let _ = writeln!(json, "  ],");
    let carp_fill = problems[0].sell.fill_ratio();
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"carp_s_sell_fill_ratio\": {},",
        json_f(carp_fill)
    );
    let _ = writeln!(
        json,
        "    \"padding_under_2x_target_met\": {},",
        carp_fill < 2.0
    );
    let _ = writeln!(
        json,
        "    \"carp_s_best_spmv_csr_gflops\": {},",
        json_f(best("carp-S", "spmv", "csr"))
    );
    let _ = writeln!(
        json,
        "    \"carp_s_best_spmv_sell_gflops\": {},",
        json_f(best("carp-S", "spmv", "sell"))
    );
    let _ = writeln!(
        json,
        "    \"carp_s_best_kacz_csr_gflops\": {},",
        json_f(best("carp-S", "kacz", "csr"))
    );
    let _ = writeln!(
        json,
        "    \"carp_s_best_kacz_sell_gflops\": {}",
        json_f(best("carp-S", "kacz", "sell"))
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("write BENCH_spmv.json");
    println!("wrote {out_path}");
}
