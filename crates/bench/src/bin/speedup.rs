//! Regenerate the paper's **speedup** results: "Results, including
//! total runtime and speedup, were compared to the reference
//! implementation, with speedup calculated relative to single-thread
//! execution."
//!
//! ```text
//! speedup [--class S|W|A|B|C] [--max-threads N] [--kernels cg,ep,is,mandelbrot]
//! ```
//!
//! Sweeps thread counts 1, 2, 4, … up to `--max-threads` (default: the
//! hardware concurrency) and prints runtime and speedup per kernel. On
//! machines with few cores the curve saturates at the core count — the
//! *shape* to check is monotone scaling up to the hardware limit, with
//! EP closest to linear (no sharing), CG and IS sublinear
//! (memory-bound), Mandelbrot near-linear under dynamic scheduling.

use romp_bench::{default_threads, render_table, write_csv, Args};
use romp_npb::{cg, ep, is, mandelbrot, Class, KernelResult};

fn sweep(kernel: &str, class: Class, counts: &[usize]) -> Vec<KernelResult> {
    match kernel {
        "cg" => {
            let setup = cg::setup(class);
            counts
                .iter()
                .map(|&t| cg::romp::run_with(&setup, t))
                .collect()
        }
        "ep" => counts.iter().map(|&t| ep::romp::run(class, t)).collect(),
        "is" => counts.iter().map(|&t| is::romp::run(class, t)).collect(),
        "mandelbrot" => counts
            .iter()
            .map(|&t| mandelbrot::romp::run(class, t))
            .collect(),
        other => panic!("unknown kernel `{other}`"),
    }
}

fn main() {
    let args = Args::parse();
    let class: Class = args
        .value_of("class")
        .unwrap_or("W")
        .parse()
        .expect("valid NPB class");
    let max_threads: usize = args
        .value_of("max-threads")
        .map(|t| t.parse().expect("integer"))
        .unwrap_or_else(default_threads);
    let kernels: Vec<String> = args
        .value_of("kernels")
        .unwrap_or("cg,ep,is,mandelbrot")
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .collect();

    let mut counts = vec![1usize];
    while counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads);
    }

    println!(
        "Speedup sweep: class {class}, thread counts {counts:?} \
         (hardware concurrency here: {})\n",
        default_threads()
    );

    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for kernel in &kernels {
        eprintln!("[speedup] {kernel}…");
        let results = sweep(kernel, class, &counts);
        let t1 = results[0].time_s;
        let header = ["Threads", "Time (s)", "Speedup", "Efficiency", "Verified"];
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let s = t1 / r.time_s;
                csv_rows.push(vec![
                    kernel.clone(),
                    r.threads.to_string(),
                    format!("{:.4}", r.time_s),
                    format!("{:.3}", s),
                ]);
                vec![
                    r.threads.to_string(),
                    format!("{:.4}", r.time_s),
                    format!("{:.2}x", s),
                    format!("{:.0}%", 100.0 * s / r.threads as f64),
                    if r.verified { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "{} (class {class}) — speedup vs 1 thread",
                    kernel.to_uppercase()
                ),
                &header,
                &rows
            )
        );
        if results.iter().any(|r| !r.verified) {
            eprintln!("[speedup] WARNING: verification failed for {kernel}");
        }
    }
    if let Ok(p) = write_csv(
        "speedup",
        &["kernel", "threads", "time_s", "speedup"],
        &csv_rows,
    ) {
        println!("(csv: {})", p.display());
    }
}
