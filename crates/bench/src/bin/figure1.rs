//! Regenerate **Figure 1** of the paper: "Overview of the process of
//! intercepting and replacing OpenMP pragmas in the Zig compiler" —
//! here, the romp pragma pipeline run on a real annotated source file,
//! printing every stage: directive comments located → directive tokens
//! → parsed AST → extracted code blocks → generated source.
//!
//! ```text
//! figure1 [path/to/annotated.rs]
//! ```
//!
//! Without an argument, a built-in demonstration program (a π
//! integration plus a region with worksharing, single, critical and
//! tasks) is used.

const DEMO: &str = r#"//! Demonstration input for the romp pragma pipeline.

fn main() {
    let n = 1_000_000usize;
    let h = 1.0 / n as f64;
    let mut pi = 0.0f64;

    //#omp parallel for schedule(static) reduction(+ : pi)
    for i in 0..n {
        let x = h * (i as f64 + 0.5);
        pi += 4.0 / (1.0 + x * x);
    }
    println!("pi ~= {}", pi * h);

    let log = std::sync::Mutex::new(Vec::new());
    //#omp parallel num_threads(4) default(shared)
    {
        //#omp single nowait
        { log.lock().unwrap().push("setup once"); }

        //#omp for schedule(dynamic, 16) nowait
        for row in 0..1024 {
            if row % 512 == 0 {
                //#omp critical (progress)
                { log.lock().unwrap().push("progress"); }
            }
        }
        //#omp barrier

        //#omp master
        { log.lock().unwrap().push("done"); }
    }
}
"#;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let src = match args.first() {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("figure1: cannot read `{path}`: {e}");
            std::process::exit(1);
        }),
        None => DEMO.to_string(),
    };
    println!(
        "Figure 1 reproduction: the pragma interception pipeline\n\
         (scan -> lex -> parse -> extract -> outline/generate)\n"
    );
    print!("{}", romp_pragma::pipeline_stages(&src));
}
