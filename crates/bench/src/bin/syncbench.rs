//! EPCC-style synchronization-overhead suite (syncbench).
//!
//! Measures the per-invocation overhead of romp's synchronization
//! constructs — empty `parallel`, `for`, `barrier`, `single`,
//! `critical`, `reduction` — at 1/2/4 threads, in the style of the
//! EPCC OpenMP microbenchmarks: each construct is executed with an
//! empty body in a tight inner loop and the mean time per construct is
//! reported.
//!
//! **Cancellation probes** ride along: `for_armed` re-measures the
//! empty worksharing loop with `cancel-var` armed (the per-chunk flag
//! checks on the *non-cancelled* path — the acceptance bar is that the
//! disarmed `for` row does not move and the armed row stays within
//! noise of it), `cancellation_point` prices one explicit cancellation
//! point, `for1k_clean`/`for1k_cancelled` compare a 1024-iteration
//! dynamic loop run to completion vs. cancelled at its first chunk
//! (early-exit saving), and `taskgroup_cancel` prices spawning 32
//! tasks into a taskgroup and cancelling it before they run (discard
//! latency).
//!
//! The `parallel` rows are measured twice: with the **hot-team** fast
//! path enabled (the default) and with `ROMP_HOT_TEAMS=0` semantics
//! (the cold pool path, toggled hermetically in-process), so the
//! fork/join fast path is pinned against its own baseline. Results are
//! printed as a table and written as machine-readable JSON (default
//! `BENCH_syncbench.json`) to seed the perf trajectory; the JSON's
//! `summary` block carries the headline `parallel@4` cold/hot ratio.
//!
//! Usage: `syncbench [--reps N] [--outer N] [--out PATH]`.

use romp_bench::{render_table, Args};
use romp_core::prelude::*;
use romp_runtime::stats::stats;
use romp_runtime::{critical, display_env, icv, CancelKind, SumOp};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured cell.
struct Cell {
    construct: &'static str,
    threads: usize,
    mode: &'static str,
    per_construct_us: f64,
}

fn set_hot_teams(enabled: bool) {
    icv::with_global_mut(|i| i.hot_teams = enabled);
}

/// Set `cancel-var` process-wide, returning the previous value so the
/// armed probes can restore whatever the environment configured (the
/// baseline rows must all run under the *same*, user-chosen state).
fn set_cancellation(enabled: bool) -> bool {
    icv::with_global_mut(|i| std::mem::replace(&mut i.cancellation, enabled))
}

/// Mean seconds per inner repetition of `body`, over `outer` trials.
fn time_mean(outer: usize, reps: usize, mut body: impl FnMut(usize)) -> f64 {
    let mut total = 0.0;
    for _ in 0..outer {
        let t0 = Instant::now();
        body(reps);
        total += t0.elapsed().as_secs_f64() / reps as f64;
    }
    total / outer as f64
}

/// Overhead of an empty `parallel` region: one fork/join per rep.
fn bench_parallel(threads: usize, outer: usize, reps: usize) -> f64 {
    // Warm: build the team (hot) / the pool (cold) outside the timing.
    for _ in 0..20 {
        fork(ForkSpec::with_num_threads(threads), |_| {});
    }
    time_mean(outer, reps, |n| {
        for _ in 0..n {
            fork(ForkSpec::with_num_threads(threads), |_| {});
        }
    })
}

/// Overhead of an in-region construct: one fork whose body executes
/// `reps` constructs on every thread; the fork cost amortizes away.
fn bench_in_region(
    threads: usize,
    outer: usize,
    reps: usize,
    construct: impl Fn(&romp_runtime::ThreadCtx<'_>) + Sync,
) -> f64 {
    for _ in 0..20 {
        fork(ForkSpec::with_num_threads(threads), |_| {});
    }
    time_mean(outer, reps, |n| {
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            for _ in 0..n {
                construct(ctx);
            }
        });
    })
}

fn json_escape_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let args = Args::parse();
    let reps: usize = args
        .value_of("reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let outer: usize = args
        .value_of("outer")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out_path = args.value_of("out").unwrap_or("BENCH_syncbench.json");

    let thread_counts = [1usize, 2, 4];
    let mut cells: Vec<Cell> = Vec::new();

    for &mode in &["cold", "hot"] {
        set_hot_teams(mode == "hot");
        for &t in &thread_counts {
            cells.push(Cell {
                construct: "parallel",
                threads: t,
                mode,
                per_construct_us: bench_parallel(t, outer, reps) * 1e6,
            });
            let in_region: [(&'static str, f64); 5] = [
                (
                    "for",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.ws_for(0..t, Schedule::static_block(), false, |_| {});
                    }),
                ),
                (
                    "barrier",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.barrier();
                    }),
                ),
                (
                    "single",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.single(false, || ());
                    }),
                ),
                (
                    "critical",
                    bench_in_region(t, outer, reps, |ctx| {
                        let _ = ctx; // critical is team-agnostic (named lock)
                        critical(|| ());
                    }),
                ),
                (
                    "reduction",
                    bench_in_region(t, outer, reps, |ctx| {
                        let _ = ctx.reduce_value(SumOp, 1u64);
                    }),
                ),
            ];
            for (construct, secs) in in_region {
                cells.push(Cell {
                    construct,
                    threads: t,
                    mode,
                    per_construct_us: secs * 1e6,
                });
            }
            // Cancellation probes (cancel-var armed for these only; the
            // rows above measure whatever the environment configured —
            // unarmed by default).
            let prev_cancel = set_cancellation(true);
            let armed: [(&'static str, f64); 5] = [
                (
                    "for_armed",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.ws_for(0..t, Schedule::static_block(), false, |_| {});
                    }),
                ),
                (
                    "cancellation_point",
                    bench_in_region(t, outer, reps, |ctx| {
                        assert!(!ctx.cancellation_point(CancelKind::Parallel));
                    }),
                ),
                (
                    "for1k_clean",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.ws_for(0..1024, Schedule::dynamic_chunk(8), false, |_| {});
                    }),
                ),
                (
                    "for1k_cancelled",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.ws_for(0..1024, Schedule::dynamic_chunk(8), false, |i| {
                            if i == 0 {
                                ctx.cancel(CancelKind::For);
                            }
                        });
                    }),
                ),
                (
                    "taskgroup_cancel",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.taskgroup(|| {
                            for _ in 0..32 {
                                ctx.task(|| {});
                            }
                            ctx.cancel(CancelKind::Taskgroup);
                        });
                    }),
                ),
            ];
            set_cancellation(prev_cancel);
            for (construct, secs) in armed {
                cells.push(Cell {
                    construct,
                    threads: t,
                    mode,
                    per_construct_us: secs * 1e6,
                });
            }
        }
    }
    set_hot_teams(true);

    // ---------------- table ----------------
    let lookup = |construct: &str, threads: usize, mode: &str| {
        cells
            .iter()
            .find(|c| c.construct == construct && c.threads == threads && c.mode == mode)
            .map(|c| c.per_construct_us)
            .unwrap_or(f64::NAN)
    };
    let constructs = [
        "parallel",
        "for",
        "for_armed",
        "barrier",
        "single",
        "critical",
        "reduction",
        "cancellation_point",
        "for1k_clean",
        "for1k_cancelled",
        "taskgroup_cancel",
    ];
    let mut rows = Vec::new();
    for construct in constructs {
        for &t in &thread_counts {
            let cold = lookup(construct, t, "cold");
            let hot = lookup(construct, t, "hot");
            rows.push(vec![
                construct.to_string(),
                t.to_string(),
                format!("{cold:.2}"),
                format!("{hot:.2}"),
                format!("{:.2}x", cold / hot),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "syncbench — per-construct overhead (us), cold pool vs hot team",
            &["construct", "threads", "cold (us)", "hot (us)", "cold/hot"],
            &rows,
        )
    );
    let s = stats().snapshot();
    println!(
        "hot-team counters: hits={} misses={} resizes={}",
        s.hot_team_hits, s.hot_team_misses, s.hot_team_resizes
    );
    println!("{}", display_env(&icv::current()));

    // ---------------- JSON ----------------
    let p4_cold = lookup("parallel", 4, "cold");
    let p4_hot = lookup("parallel", 4, "hot");
    let ratio = p4_cold / p4_hot;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"syncbench\",");
    let _ = writeln!(json, "  \"hardware_threads\": {},", icv::hardware_threads());
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"outer\": {outer},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"construct\": \"{}\", \"threads\": {}, \"mode\": \"{}\", \"per_construct_us\": {}}}{comma}",
            c.construct,
            c.threads,
            c.mode,
            json_escape_f(c.per_construct_us)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"parallel_4t_cold_us\": {},",
        json_escape_f(p4_cold)
    );
    let _ = writeln!(
        json,
        "    \"parallel_4t_hot_us\": {},",
        json_escape_f(p4_hot)
    );
    let _ = writeln!(
        json,
        "    \"parallel_4t_cold_over_hot\": {},",
        json_escape_f(ratio)
    );
    let f4 = lookup("for", 4, "hot");
    let f4_armed = lookup("for_armed", 4, "hot");
    let clean = lookup("for1k_clean", 4, "hot");
    let cancelled = lookup("for1k_cancelled", 4, "hot");
    let _ = writeln!(json, "    \"hot_team_5x_target_met\": {},", ratio >= 5.0);
    let _ = writeln!(json, "    \"for_4t_hot_us\": {},", json_escape_f(f4));
    let _ = writeln!(
        json,
        "    \"for_armed_4t_hot_us\": {},",
        json_escape_f(f4_armed)
    );
    let _ = writeln!(
        json,
        "    \"for1k_clean_4t_hot_us\": {},",
        json_escape_f(clean)
    );
    let _ = writeln!(
        json,
        "    \"for1k_cancelled_4t_hot_us\": {},",
        json_escape_f(cancelled)
    );
    let _ = writeln!(
        json,
        "    \"cancelled_loop_speedup\": {}",
        json_escape_f(clean / cancelled)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("write BENCH_syncbench.json");
    println!("wrote {out_path}");
}
