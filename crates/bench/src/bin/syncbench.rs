//! EPCC-style synchronization-overhead suite (syncbench).
//!
//! Measures the per-invocation overhead of romp's synchronization
//! constructs — empty `parallel`, `for`, `barrier`, `single`,
//! `critical`, `reduction` — at 1/2/4 threads, in the style of the
//! EPCC OpenMP microbenchmarks: each construct is executed with an
//! empty body in a tight inner loop and the mean time per construct is
//! reported.
//!
//! **Cancellation probes** ride along: `for_armed` re-measures the
//! empty worksharing loop with `cancel-var` armed (the per-chunk flag
//! checks on the *non-cancelled* path — the acceptance bar is that the
//! disarmed `for` row does not move and the armed row stays within
//! noise of it), `cancellation_point` prices one explicit cancellation
//! point, `for1k_clean`/`for1k_cancelled` compare a 1024-iteration
//! dynamic loop run to completion vs. cancelled at its first chunk
//! (early-exit saving), and `taskgroup_cancel` prices spawning 32
//! tasks into a taskgroup and cancelling it before they run (discard
//! latency).
//!
//! The `parallel` rows are measured twice: with the **hot-team** fast
//! path enabled (the default) and with `ROMP_HOT_TEAMS=0` semantics
//! (the cold pool path, toggled hermetically in-process), so the
//! fork/join fast path is pinned against its own baseline. Results are
//! printed as a table and written as machine-readable JSON (default
//! `BENCH_syncbench.json`) to seed the perf trajectory; the JSON's
//! `summary` block carries the headline `parallel@4` cold/hot ratio.
//!
//! The **nested probe** prices a 2×2 nested fork (an outer `parallel`
//! of two threads whose every member opens an inner `parallel` of two)
//! under `max-active-levels = 2`, hot vs cold and unbound vs
//! `proc_bind(spread)`. Hot mode exercises the hierarchical lease tree
//! — after warm-up no fork at either level may spawn an OS thread —
//! and the acceptance bar is hot beating cold by ≥3×.
//!
//! **Server mode** measures many-master fork *throughput*: M
//! concurrent masters (default M = 1/2/4/8) each drive a tight loop of
//! small parallel regions, and the suite reports aggregate regions/sec
//! plus the p99 per-fork latency across all masters, cold and hot.
//! This is the workload the sharded idle-worker pool exists for, so
//! each run also re-executes itself as a subprocess with
//! `ROMP_POOL_SHARDS=1` (the pre-sharding global free list — the shard
//! count is frozen per process, hence the subprocess) and records the
//! single-shard numbers alongside, giving a same-run sharded-vs-global
//! comparison in the `server_mode` JSON section.
//!
//! Usage: `syncbench [--reps N] [--outer N] [--out PATH]
//! [--server-m 1,2,4,8] [--server-regions N] [--server-threads T]
//! [--no-server]`. `--server-only` is internal (the baseline child).

use romp_bench::{render_table, Args};
use romp_core::prelude::*;
use romp_runtime::stats::stats;
use romp_runtime::{critical, display_env, icv, pool, CancelKind, ProcBind, SumOp};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured cell.
struct Cell {
    construct: &'static str,
    threads: usize,
    mode: &'static str,
    per_construct_us: f64,
}

fn set_hot_teams(enabled: bool) {
    icv::with_global_mut(|i| i.hot_teams = enabled);
}

/// Set `cancel-var` process-wide, returning the previous value so the
/// armed probes can restore whatever the environment configured (the
/// baseline rows must all run under the *same*, user-chosen state).
fn set_cancellation(enabled: bool) -> bool {
    icv::with_global_mut(|i| std::mem::replace(&mut i.cancellation, enabled))
}

/// Mean seconds per inner repetition of `body`, over `outer` trials.
fn time_mean(outer: usize, reps: usize, mut body: impl FnMut(usize)) -> f64 {
    let mut total = 0.0;
    for _ in 0..outer {
        let t0 = Instant::now();
        body(reps);
        total += t0.elapsed().as_secs_f64() / reps as f64;
    }
    total / outer as f64
}

/// Overhead of an empty `parallel` region: one fork/join per rep.
fn bench_parallel(threads: usize, outer: usize, reps: usize) -> f64 {
    // Warm: build the team (hot) / the pool (cold) outside the timing.
    for _ in 0..20 {
        fork(ForkSpec::with_num_threads(threads), |_| {});
    }
    time_mean(outer, reps, |n| {
        for _ in 0..n {
            fork(ForkSpec::with_num_threads(threads), |_| {});
        }
    })
}

/// Overhead of an in-region construct: one fork whose body executes
/// `reps` constructs on every thread; the fork cost amortizes away.
fn bench_in_region(
    threads: usize,
    outer: usize,
    reps: usize,
    construct: impl Fn(&romp_runtime::ThreadCtx<'_>) + Sync,
) -> f64 {
    for _ in 0..20 {
        fork(ForkSpec::with_num_threads(threads), |_| {});
    }
    time_mean(outer, reps, |n| {
        fork(ForkSpec::with_num_threads(threads), |ctx| {
            for _ in 0..n {
                construct(ctx);
            }
        });
    })
}

// ---------------- skewed-iteration probe ----------------

/// Trip count of the skew probe's triangular loop.
const SKEW_TRIP: usize = 1024;

/// One skew-probe measurement: a schedule's mean time per loop.
struct SkewCell {
    schedule: &'static str,
    threads: usize,
    per_loop_us: f64,
}

/// Triangular body: iteration `i` costs O(i), so a block-static split
/// hands thread `t-1` ~double the mean work — the imbalance the
/// adaptive `schedule(auto)` learner exists to fix.
fn skew_body(i: usize) {
    let mut acc = 0u64;
    for k in 0..i {
        acc = acc.wrapping_add(std::hint::black_box(k as u64));
    }
    std::hint::black_box(acc);
}

/// Mean seconds per skewed loop under `sched`. The warm-up passes also
/// let the `auto` learner finish its probe rounds (4 arms x 3 rounds)
/// so the timed window measures the *converged* schedule, not probing.
fn bench_skew(
    threads: usize,
    sched: Schedule,
    site: &'static str,
    outer: usize,
    reps: usize,
) -> f64 {
    for _ in 0..16 {
        par_for(0..SKEW_TRIP)
            .num_threads(threads)
            .schedule(sched)
            .site(site)
            .run(skew_body);
    }
    time_mean(outer, reps, |n| {
        for _ in 0..n {
            par_for(0..SKEW_TRIP)
                .num_threads(threads)
                .schedule(sched)
                .site(site)
                .run(skew_body);
        }
    })
}

/// Measure the triangular loop under `auto` and a spread of hand-picked
/// fixed schedules, hot teams on. Each (schedule x threads) cell gets
/// its own named site so the learner histories stay independent.
fn run_skew_probe(outer: usize, reps: usize) -> Vec<SkewCell> {
    set_hot_teams(true);
    let mut cells = Vec::new();
    for &t in &[2usize, 4] {
        let fixed: [(&'static str, Schedule); 4] = [
            ("static", Schedule::static_block()),
            ("static,16", Schedule::static_chunk(16)),
            ("dynamic,16", Schedule::dynamic_chunk(16)),
            ("guided,16", Schedule::guided_chunk(16)),
        ];
        for (name, sched) in fixed {
            cells.push(SkewCell {
                schedule: name,
                threads: t,
                per_loop_us: bench_skew(t, sched, "skew-fixed", outer, reps) * 1e6,
            });
        }
        let site = if t == 2 {
            "skew-auto-2t"
        } else {
            "skew-auto-4t"
        };
        cells.push(SkewCell {
            schedule: "auto",
            threads: t,
            per_loop_us: bench_skew(t, Schedule::Auto, site, outer, reps) * 1e6,
        });
    }
    cells
}

// ---------------- nested-fork probe ----------------

/// One nested-probe measurement.
struct NestedCell {
    mode: &'static str,
    bind: &'static str,
    per_nest_us: f64,
}

/// Mean time of one 2×2 nested fork/join: an outer `parallel@2` whose
/// every thread opens an inner `parallel@2`. Warm-up builds the whole
/// team tree (hot) / grows the pool (cold) outside the timed window.
fn bench_nested(outer: usize, reps: usize) -> f64 {
    for _ in 0..20 {
        fork(ForkSpec::with_num_threads(2), |_| {
            fork(ForkSpec::with_num_threads(2), |_| {});
        });
    }
    time_mean(outer, reps, |n| {
        for _ in 0..n {
            fork(ForkSpec::with_num_threads(2), |_| {
                fork(ForkSpec::with_num_threads(2), |_| {});
            });
        }
    })
}

/// Measure the 2×2 nest in all four (bind × hot) configurations. The
/// bind is driven through the global `bind-var` list — inner forks
/// come from pool workers, which read the globals, not the master's
/// thread-local overrides.
fn run_nested_probe(outer: usize, reps: usize) -> Vec<NestedCell> {
    let prev_mal = icv::with_global_mut(|i| std::mem::replace(&mut i.max_active_levels, 2));
    let mut cells = Vec::new();
    for &(bind_name, bind) in &[("unbound", ProcBind::False), ("spread", ProcBind::Spread)] {
        let prev_bind = icv::with_global_mut(|i| std::mem::replace(&mut i.proc_bind, vec![bind]));
        for &mode in &["cold", "hot"] {
            set_hot_teams(mode == "hot");
            cells.push(NestedCell {
                mode,
                bind: bind_name,
                per_nest_us: bench_nested(outer, reps) * 1e6,
            });
        }
        icv::with_global_mut(|i| i.proc_bind = prev_bind);
    }
    set_hot_teams(true);
    icv::with_global_mut(|i| i.max_active_levels = prev_mal);
    cells
}

fn json_escape_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

// ---------------- server mode ----------------

/// One server-mode measurement: M masters hammering small regions.
struct ServerCell {
    masters: usize,
    mode: &'static str,
    regions_per_sec: f64,
    p99_fork_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// Run M concurrent masters, each forking `regions` small parallel
/// regions of `threads` threads, and measure aggregate throughput and
/// per-fork latency. Masters are freshly-spawned OS threads (so each
/// gets its own home shard and, in hot mode, its own cached team) and
/// start together behind a barrier; the wall clock spans the earliest
/// start to the latest finish.
fn run_server_cell(
    masters: usize,
    threads: usize,
    regions: usize,
    mode: &'static str,
) -> ServerCell {
    set_hot_teams(mode == "hot");
    let gate = std::sync::Arc::new(std::sync::Barrier::new(masters));
    let handles: Vec<_> = (0..masters)
        .map(|m| {
            let gate = gate.clone();
            std::thread::Builder::new()
                .name(format!("syncbench-master-{m}"))
                .spawn(move || {
                    // Warm this master's path (pool growth / hot-team
                    // build) outside the timed window.
                    for _ in 0..20 {
                        fork(ForkSpec::with_num_threads(threads), |_| {});
                    }
                    let mut lat = Vec::with_capacity(regions);
                    gate.wait();
                    let start = Instant::now();
                    for _ in 0..regions {
                        let t0 = Instant::now();
                        fork(ForkSpec::with_num_threads(threads), |_| {});
                        lat.push(t0.elapsed().as_secs_f64());
                    }
                    (start, start.elapsed(), lat)
                })
                .unwrap()
        })
        .collect();
    let mut all_lat = Vec::with_capacity(masters * regions);
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for h in handles {
        let (start, took, lat) = h.join().expect("server-mode master panicked");
        let end = start + took;
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |e| e.max(end)));
        all_lat.extend(lat);
    }
    let wall = last_end
        .unwrap()
        .duration_since(first_start.unwrap())
        .as_secs_f64();
    all_lat.sort_by(|a, b| a.total_cmp(b));
    ServerCell {
        masters,
        mode,
        regions_per_sec: (masters * regions) as f64 / wall,
        p99_fork_us: percentile(&all_lat, 0.99) * 1e6,
    }
}

fn run_server_mode(ms: &[usize], threads: usize, regions: usize) -> Vec<ServerCell> {
    let mut cells = Vec::new();
    for &mode in &["cold", "hot"] {
        for &m in ms {
            cells.push(run_server_cell(m, threads, regions, mode));
        }
    }
    set_hot_teams(true);
    cells
}

/// Re-run this binary with `ROMP_POOL_SHARDS=1` to measure the
/// pre-sharding global free list in the same run. The shard count is
/// frozen at first pool use, so the baseline needs its own process.
fn run_single_shard_baseline(
    ms: &[usize],
    threads: usize,
    regions: usize,
) -> Option<Vec<ServerCell>> {
    let exe = std::env::current_exe().ok()?;
    let m_list = ms
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let out = std::process::Command::new(exe)
        .args([
            "--server-only",
            "--server-m",
            &m_list,
            "--server-regions",
            &regions.to_string(),
            "--server-threads",
            &threads.to_string(),
        ])
        .env("ROMP_POOL_SHARDS", "1")
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "single-shard baseline child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    let mut cells = Vec::new();
    for line in String::from_utf8_lossy(&out.stdout).lines() {
        let Some(rest) = line.strip_prefix("SERVER_RESULT ") else {
            continue;
        };
        let mut masters = 0usize;
        let mut mode = "";
        let mut rps = f64::NAN;
        let mut p99 = f64::NAN;
        for kv in rest.split_whitespace() {
            let Some((k, v)) = kv.split_once('=') else {
                continue;
            };
            match k {
                "masters" => masters = v.parse().unwrap_or(0),
                "mode" => mode = if v == "hot" { "hot" } else { "cold" },
                "rps" => rps = v.parse().unwrap_or(f64::NAN),
                "p99_us" => p99 = v.parse().unwrap_or(f64::NAN),
                _ => {}
            }
        }
        if masters > 0 && !mode.is_empty() {
            cells.push(ServerCell {
                masters,
                mode: if mode == "hot" { "hot" } else { "cold" },
                regions_per_sec: rps,
                p99_fork_us: p99,
            });
        }
    }
    (!cells.is_empty()).then_some(cells)
}

fn main() {
    let args = Args::parse();
    let reps: usize = args
        .value_of("reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let outer: usize = args
        .value_of("outer")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let out_path = args.value_of("out").unwrap_or("BENCH_syncbench.json");
    let server_ms: Vec<usize> = args
        .value_of("server-m")
        .unwrap_or("1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&m| m > 0)
        .collect();
    let server_regions: usize = args
        .value_of("server-regions")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| (reps / 4).max(50));
    let server_threads: usize = args
        .value_of("server-threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
        .max(1);

    if args.has("server-only") {
        // Baseline child: measure server mode only and report on stdout
        // in a line format the parent parses (see
        // `run_single_shard_baseline`).
        for c in run_server_mode(&server_ms, server_threads, server_regions) {
            println!(
                "SERVER_RESULT masters={} mode={} rps={:.4} p99_us={:.4}",
                c.masters, c.mode, c.regions_per_sec, c.p99_fork_us
            );
        }
        return;
    }

    let thread_counts = [1usize, 2, 4];
    let mut cells: Vec<Cell> = Vec::new();

    for &mode in &["cold", "hot"] {
        set_hot_teams(mode == "hot");
        for &t in &thread_counts {
            cells.push(Cell {
                construct: "parallel",
                threads: t,
                mode,
                per_construct_us: bench_parallel(t, outer, reps) * 1e6,
            });
            let in_region: [(&'static str, f64); 5] = [
                (
                    "for",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.ws_for(0..t, Schedule::static_block(), false, |_| {});
                    }),
                ),
                (
                    "barrier",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.barrier();
                    }),
                ),
                (
                    "single",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.single(false, || ());
                    }),
                ),
                (
                    "critical",
                    bench_in_region(t, outer, reps, |ctx| {
                        let _ = ctx; // critical is team-agnostic (named lock)
                        critical(|| ());
                    }),
                ),
                (
                    "reduction",
                    bench_in_region(t, outer, reps, |ctx| {
                        let _ = ctx.reduce_value(SumOp, 1u64);
                    }),
                ),
            ];
            for (construct, secs) in in_region {
                cells.push(Cell {
                    construct,
                    threads: t,
                    mode,
                    per_construct_us: secs * 1e6,
                });
            }
            // Cancellation probes (cancel-var armed for these only; the
            // rows above measure whatever the environment configured —
            // unarmed by default).
            let prev_cancel = set_cancellation(true);
            let armed: [(&'static str, f64); 5] = [
                (
                    "for_armed",
                    bench_in_region(t, outer, reps, |ctx| {
                        ctx.ws_for(0..t, Schedule::static_block(), false, |_| {});
                    }),
                ),
                (
                    "cancellation_point",
                    bench_in_region(t, outer, reps, |ctx| {
                        assert!(!ctx.cancellation_point(CancelKind::Parallel));
                    }),
                ),
                (
                    "for1k_clean",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.ws_for(0..1024, Schedule::dynamic_chunk(8), false, |_| {});
                    }),
                ),
                (
                    "for1k_cancelled",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.ws_for(0..1024, Schedule::dynamic_chunk(8), false, |i| {
                            if i == 0 {
                                ctx.cancel(CancelKind::For);
                            }
                        });
                    }),
                ),
                (
                    "taskgroup_cancel",
                    bench_in_region(t, outer, reps / 8 + 1, |ctx| {
                        ctx.taskgroup(|| {
                            for _ in 0..32 {
                                ctx.task(|| {});
                            }
                            ctx.cancel(CancelKind::Taskgroup);
                        });
                    }),
                ),
            ];
            set_cancellation(prev_cancel);
            for (construct, secs) in armed {
                cells.push(Cell {
                    construct,
                    threads: t,
                    mode,
                    per_construct_us: secs * 1e6,
                });
            }
        }
    }
    set_hot_teams(true);

    // ---------------- table ----------------
    let lookup = |construct: &str, threads: usize, mode: &str| {
        cells
            .iter()
            .find(|c| c.construct == construct && c.threads == threads && c.mode == mode)
            .map(|c| c.per_construct_us)
            .unwrap_or(f64::NAN)
    };
    let constructs = [
        "parallel",
        "for",
        "for_armed",
        "barrier",
        "single",
        "critical",
        "reduction",
        "cancellation_point",
        "for1k_clean",
        "for1k_cancelled",
        "taskgroup_cancel",
    ];
    let mut rows = Vec::new();
    for construct in constructs {
        for &t in &thread_counts {
            let cold = lookup(construct, t, "cold");
            let hot = lookup(construct, t, "hot");
            rows.push(vec![
                construct.to_string(),
                t.to_string(),
                format!("{cold:.2}"),
                format!("{hot:.2}"),
                format!("{:.2}x", cold / hot),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "syncbench — per-construct overhead (us), cold pool vs hot team",
            &["construct", "threads", "cold (us)", "hot (us)", "cold/hot"],
            &rows,
        )
    );
    let s = stats().snapshot();
    println!(
        "hot-team counters: hits={} misses={} resizes={}",
        s.hot_team_hits, s.hot_team_misses, s.hot_team_resizes
    );
    println!("{}", display_env(&icv::current()));

    // ---------------- skewed-iteration probe ----------------
    let skew_cells = run_skew_probe(outer, (reps / 64).max(8));
    let skew_lookup = |schedule: &str, threads: usize| {
        skew_cells
            .iter()
            .find(|c| c.schedule == schedule && c.threads == threads)
            .map(|c| c.per_loop_us)
            .unwrap_or(f64::NAN)
    };
    // Best/worst over the *fixed* schedules; `auto` is graded against
    // them (the acceptance bar is auto within ~10% of the best).
    let skew_fixed_bounds = |threads: usize| {
        let fixed: Vec<f64> = skew_cells
            .iter()
            .filter(|c| c.threads == threads && c.schedule != "auto")
            .map(|c| c.per_loop_us)
            .collect();
        let best = fixed.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = fixed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (best, worst)
    };
    {
        let mut rows = Vec::new();
        for &t in &[2usize, 4] {
            let (best, _) = skew_fixed_bounds(t);
            for c in skew_cells.iter().filter(|c| c.threads == t) {
                rows.push(vec![
                    c.schedule.to_string(),
                    t.to_string(),
                    format!("{:.2}", c.per_loop_us),
                    format!("{:.2}x", c.per_loop_us / best),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "syncbench skew probe — triangular loop of {SKEW_TRIP} iterations, \
                     schedule(auto) vs hand-picked (hot teams)"
                ),
                &["schedule", "threads", "per loop (us)", "vs best fixed"],
                &rows,
            )
        );
    }
    // The tune-table banner: the skew probe's auto sites must show up
    // converged here after their warm-up passes.
    println!("{}", romp_runtime::tune::display_tune_table());

    // ---------------- nested-fork probe ----------------
    let nested_cells = run_nested_probe(outer, (reps / 8).max(25));
    let nested_lookup = |mode: &str, bind: &str| {
        nested_cells
            .iter()
            .find(|c| c.mode == mode && c.bind == bind)
            .map(|c| c.per_nest_us)
            .unwrap_or(f64::NAN)
    };
    {
        let mut rows = Vec::new();
        for &bind in &["unbound", "spread"] {
            let cold = nested_lookup("cold", bind);
            let hot = nested_lookup("hot", bind);
            rows.push(vec![
                bind.to_string(),
                format!("{cold:.2}"),
                format!("{hot:.2}"),
                format!("{:.2}x", cold / hot),
            ]);
        }
        println!(
            "{}",
            render_table(
                "syncbench nested probe — 2x2 nested parallel (max-active-levels=2), \
                 cold pool vs hierarchical hot teams",
                &["bind", "cold (us)", "hot (us)", "cold/hot"],
                &rows,
            )
        );
        let s = stats().snapshot();
        println!(
            "nested hot-team counters: nested_hits={} nested_misses={} \
             affinity_binds={} affinity_bind_failures={}",
            s.hot_team_nested_hits,
            s.hot_team_nested_misses,
            s.affinity_binds,
            s.affinity_bind_failures
        );
    }

    // ---------------- server mode ----------------
    let (server_cells, baseline_cells) = if args.has("no-server") || server_ms.is_empty() {
        (Vec::new(), None)
    } else {
        let cells = run_server_mode(&server_ms, server_threads, server_regions);
        let baseline = run_single_shard_baseline(&server_ms, server_threads, server_regions);
        (cells, baseline)
    };
    let baseline_lookup = |masters: usize, mode: &str| {
        baseline_cells.as_ref().and_then(|cs| {
            cs.iter()
                .find(|c| c.masters == masters && c.mode == mode)
                .map(|c| (c.regions_per_sec, c.p99_fork_us))
        })
    };
    if !server_cells.is_empty() {
        let mut rows = Vec::new();
        for c in &server_cells {
            let (b_rps, b_p99) = baseline_lookup(c.masters, c.mode).unwrap_or((f64::NAN, f64::NAN));
            rows.push(vec![
                c.masters.to_string(),
                c.mode.to_string(),
                format!("{:.0}", c.regions_per_sec),
                format!("{:.2}", c.p99_fork_us),
                format!("{b_rps:.0}"),
                format!("{b_p99:.2}"),
                format!("{:.2}x", c.regions_per_sec / b_rps),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!(
                    "syncbench server mode — {} masters x {} regions of parallel@{} \
                     ({} pool shards vs single-shard baseline)",
                    server_ms
                        .iter()
                        .map(|m| m.to_string())
                        .collect::<Vec<_>>()
                        .join("/"),
                    server_regions,
                    server_threads,
                    pool::shard_count(),
                ),
                &[
                    "masters",
                    "mode",
                    "regions/s",
                    "p99 fork (us)",
                    "1-shard regions/s",
                    "1-shard p99 (us)",
                    "sharded/1-shard",
                ],
                &rows,
            )
        );
        let sc = pool::shard_counters();
        let (acq, stole, cont) = sc
            .iter()
            .fold((0u64, 0u64, 0u64), |(a, s, c), &(sa, ss, sd)| {
                (a + sa, s + ss, c + sd)
            });
        println!(
            "pool shards: {} (acquired={acq} stolen={stole} contended={cont})",
            sc.len()
        );
    }

    // ---------------- JSON ----------------
    let p4_cold = lookup("parallel", 4, "cold");
    let p4_hot = lookup("parallel", 4, "hot");
    let ratio = p4_cold / p4_hot;
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"syncbench\",");
    let _ = writeln!(json, "  \"meta\": {},", romp_bench::meta_json());
    let _ = writeln!(json, "  \"hardware_threads\": {},", icv::hardware_threads());
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"outer\": {outer},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"construct\": \"{}\", \"threads\": {}, \"mode\": \"{}\", \"per_construct_us\": {}}}{comma}",
            c.construct,
            c.threads,
            c.mode,
            json_escape_f(c.per_construct_us)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"skew\": {{");
    let _ = writeln!(json, "    \"trip\": {SKEW_TRIP},");
    let _ = writeln!(json, "    \"results\": [");
    for (i, c) in skew_cells.iter().enumerate() {
        let comma = if i + 1 == skew_cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"schedule\": \"{}\", \"threads\": {}, \"per_loop_us\": {}}}{comma}",
            c.schedule,
            c.threads,
            json_escape_f(c.per_loop_us)
        );
    }
    let _ = writeln!(json, "    ],");
    let (best4, worst4) = skew_fixed_bounds(4);
    let auto4 = skew_lookup("auto", 4);
    let _ = writeln!(json, "    \"summary\": {{");
    let _ = writeln!(json, "      \"auto_4t_us\": {},", json_escape_f(auto4));
    let _ = writeln!(
        json,
        "      \"best_fixed_4t_us\": {},",
        json_escape_f(best4)
    );
    let _ = writeln!(
        json,
        "      \"worst_fixed_4t_us\": {},",
        json_escape_f(worst4)
    );
    let _ = writeln!(
        json,
        "      \"auto_over_best_fixed_4t\": {}",
        json_escape_f(auto4 / best4)
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"nested\": {{");
    let _ = writeln!(json, "    \"geometry\": \"2x2\",");
    let _ = writeln!(json, "    \"results\": [");
    for (i, c) in nested_cells.iter().enumerate() {
        let comma = if i + 1 == nested_cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"mode\": \"{}\", \"bind\": \"{}\", \"per_nest_us\": {}}}{comma}",
            c.mode,
            c.bind,
            json_escape_f(c.per_nest_us)
        );
    }
    let _ = writeln!(json, "    ],");
    let n_cold = nested_lookup("cold", "unbound");
    let n_hot = nested_lookup("hot", "unbound");
    let n_hot_spread = nested_lookup("hot", "spread");
    let _ = writeln!(json, "    \"summary\": {{");
    let _ = writeln!(
        json,
        "      \"nested_2x2_cold_us\": {},",
        json_escape_f(n_cold)
    );
    let _ = writeln!(
        json,
        "      \"nested_2x2_hot_us\": {},",
        json_escape_f(n_hot)
    );
    let _ = writeln!(
        json,
        "      \"nested_2x2_cold_over_hot\": {},",
        json_escape_f(n_cold / n_hot)
    );
    let _ = writeln!(
        json,
        "      \"nested_hot_3x_target_met\": {},",
        n_cold / n_hot >= 3.0
    );
    let _ = writeln!(
        json,
        "      \"nested_2x2_hot_spread_us\": {},",
        json_escape_f(n_hot_spread)
    );
    let _ = writeln!(
        json,
        "      \"spread_over_unbound_hot\": {}",
        json_escape_f(n_hot_spread / n_hot)
    );
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    if !server_cells.is_empty() {
        let _ = writeln!(json, "  \"server_mode\": {{");
        let _ = writeln!(json, "    \"threads_per_region\": {server_threads},");
        let _ = writeln!(json, "    \"regions_per_master\": {server_regions},");
        let _ = writeln!(json, "    \"pool_shards\": {},", pool::shard_count());
        let _ = writeln!(
            json,
            "    \"baseline_pool_shards\": {},",
            if baseline_cells.is_some() {
                "1"
            } else {
                "null"
            }
        );
        let _ = writeln!(json, "    \"results\": [");
        for (i, c) in server_cells.iter().enumerate() {
            let comma = if i + 1 == server_cells.len() { "" } else { "," };
            let (b_rps, b_p99) = baseline_lookup(c.masters, c.mode).unwrap_or((f64::NAN, f64::NAN));
            let _ = writeln!(
                json,
                "      {{\"masters\": {}, \"mode\": \"{}\", \"regions_per_sec\": {}, \
                 \"p99_fork_us\": {}, \"single_shard_regions_per_sec\": {}, \
                 \"single_shard_p99_fork_us\": {}}}{comma}",
                c.masters,
                c.mode,
                json_escape_f(c.regions_per_sec),
                json_escape_f(c.p99_fork_us),
                json_escape_f(b_rps),
                json_escape_f(b_p99)
            );
        }
        let _ = writeln!(json, "    ],");
        let m4 = server_cells
            .iter()
            .find(|c| c.masters == 4 && c.mode == "cold")
            .map(|c| c.regions_per_sec)
            .unwrap_or(f64::NAN);
        let m4_base = baseline_lookup(4, "cold")
            .map(|(r, _)| r)
            .unwrap_or(f64::NAN);
        let _ = writeln!(json, "    \"summary\": {{");
        let _ = writeln!(
            json,
            "      \"m4_cold_regions_per_sec\": {},",
            json_escape_f(m4)
        );
        let _ = writeln!(
            json,
            "      \"m4_cold_single_shard_regions_per_sec\": {},",
            json_escape_f(m4_base)
        );
        let _ = writeln!(
            json,
            "      \"m4_cold_sharded_over_single_shard\": {}",
            json_escape_f(m4 / m4_base)
        );
        let _ = writeln!(json, "    }}");
        let _ = writeln!(json, "  }},");
    }
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(
        json,
        "    \"parallel_4t_cold_us\": {},",
        json_escape_f(p4_cold)
    );
    let _ = writeln!(
        json,
        "    \"parallel_4t_hot_us\": {},",
        json_escape_f(p4_hot)
    );
    let _ = writeln!(
        json,
        "    \"parallel_4t_cold_over_hot\": {},",
        json_escape_f(ratio)
    );
    let f4 = lookup("for", 4, "hot");
    let f4_armed = lookup("for_armed", 4, "hot");
    let clean = lookup("for1k_clean", 4, "hot");
    let cancelled = lookup("for1k_cancelled", 4, "hot");
    let _ = writeln!(json, "    \"hot_team_5x_target_met\": {},", ratio >= 5.0);
    let _ = writeln!(json, "    \"for_4t_hot_us\": {},", json_escape_f(f4));
    let _ = writeln!(
        json,
        "    \"for_armed_4t_hot_us\": {},",
        json_escape_f(f4_armed)
    );
    let _ = writeln!(
        json,
        "    \"for1k_clean_4t_hot_us\": {},",
        json_escape_f(clean)
    );
    let _ = writeln!(
        json,
        "    \"for1k_cancelled_4t_hot_us\": {},",
        json_escape_f(cancelled)
    );
    let _ = writeln!(
        json,
        "    \"cancelled_loop_speedup\": {}",
        json_escape_f(clean / cancelled)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write(out_path, &json).expect("write BENCH_syncbench.json");
    println!("wrote {out_path}");
}
