//! Regenerate **Table 1** of the paper: runtime of the reference
//! implementations vs the romp (Zig+OpenMP analogue) implementations of
//! NPB CG, EP, IS and the Mandelbrot benchmark.
//!
//! ```text
//! table1 [--class S|W|A|B|C] [--threads N] [--kernels cg,ep,is,mandelbrot]
//! ```
//!
//! The paper runs class C on a 128-core ARCHER2 node; the default here
//! is class A with all available cores, which preserves the *shape*
//! (who wins, by what factor) at laptop scale. Pass `--class C` to run
//! the paper's problem size.

use romp_bench::{default_threads, render_table, result_row, write_csv, Args};
use romp_npb::{cg, ep, is, mandelbrot, Class, KernelResult};

fn main() {
    let args = Args::parse();
    let class: Class = args
        .value_of("class")
        .unwrap_or("A")
        .parse()
        .expect("valid NPB class");
    let threads: usize = args
        .value_of("threads")
        .map(|t| t.parse().expect("integer thread count"))
        .unwrap_or_else(default_threads);
    let kernels: Vec<String> = args
        .value_of("kernels")
        .unwrap_or("cg,ep,is,mandelbrot")
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .collect();

    println!(
        "Reproducing Table 1: class {class}, {threads} threads \
         (paper: class C, 128 cores of ARCHER2)\n"
    );

    let mut pairs: Vec<(KernelResult, KernelResult)> = Vec::new();
    for k in &kernels {
        let pair = match k.as_str() {
            "cg" => {
                eprintln!("[table1] generating CG class {class} matrix…");
                let setup = cg::setup(class);
                eprintln!("[table1] CG reference run…");
                let r = cg::reference::run_with(&setup, threads);
                eprintln!("[table1] CG romp run…");
                let z = cg::romp::run_with(&setup, threads);
                (r, z)
            }
            "ep" => {
                eprintln!("[table1] EP reference run…");
                let r = ep::reference::run(class, threads);
                eprintln!("[table1] EP romp run…");
                let z = ep::romp::run(class, threads);
                (r, z)
            }
            "is" => {
                eprintln!("[table1] IS reference run…");
                let r = is::reference::run(class, threads);
                eprintln!("[table1] IS romp run…");
                let z = is::romp::run(class, threads);
                (r, z)
            }
            "mandelbrot" => {
                eprintln!("[table1] Mandelbrot reference run…");
                let r = mandelbrot::reference::run(class, threads);
                eprintln!("[table1] Mandelbrot romp run…");
                let z = mandelbrot::romp::run(class, threads);
                (r, z)
            }
            other => {
                eprintln!("[table1] unknown kernel `{other}` (skipped)");
                continue;
            }
        };
        pairs.push(pair);
    }

    // Per-run detail table.
    let header = [
        "Kernel", "Class", "Version", "Threads", "Time (s)", "MOP/s", "Verified",
    ];
    let mut rows = Vec::new();
    for (r, z) in &pairs {
        rows.push(result_row(r));
        rows.push(result_row(z));
    }
    println!("{}", render_table("Per-run detail", &header, &rows));
    if let Ok(p) = write_csv("table1_detail", &header, &rows) {
        println!("(csv: {})\n", p.display());
    }

    // The paper's Table 1 layout: one row per version, one column per
    // kernel.
    let mut head: Vec<String> = vec!["Version".into()];
    let mut ref_row: Vec<String> = vec!["Reference".into()];
    let mut romp_row: Vec<String> = vec!["Romp+OpenMP".into()];
    let mut delta_row: Vec<String> = vec!["Ref/Romp".into()];
    for (r, z) in &pairs {
        head.push(r.name.to_string());
        ref_row.push(format!("{:.3}", r.time_s));
        romp_row.push(format!("{:.3}", z.time_s));
        delta_row.push(format!("{:.2}x", r.time_s / z.time_s));
    }
    let head_refs: Vec<&str> = head.iter().map(|s| s.as_str()).collect();
    println!(
        "{}",
        render_table(
            &format!("Table 1 (class {class}): runtime in seconds"),
            &head_refs,
            &[ref_row.clone(), romp_row.clone(), delta_row.clone()],
        )
    );
    let _ = write_csv("table1", &head_refs, &[ref_row, romp_row, delta_row]);

    println!(
        "Paper's deltas for context: Zig beat the Fortran references by ~11% (EP) and\n\
         ~12% (CG); the C references beat Zig by ~11% (IS) and ~5% (Mandelbrot).\n\
         Both of our configurations share one code generator (rustc), so expect\n\
         ratios near 1.0x — the claim under test is *comparable performance*."
    );

    let all_ok = pairs.iter().all(|(r, z)| r.verified && z.verified);
    println!(
        "\nVerification: {}",
        if all_ok {
            "ALL KERNELS SUCCESSFUL"
        } else {
            "FAILURES PRESENT (see table)"
        }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
